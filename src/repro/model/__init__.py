"""Analytic models from the paper's theory sections.

* :mod:`repro.model.cache_reuse` -- the bins-and-balls probability that a seed
  is reused on a node (section III-B, Figure 7).
* :mod:`repro.model.load_imbalance` -- the Theorem 1 balls-into-bins bound on
  the imbalance of "slow" reads after random permutation (section IV-B).
* :mod:`repro.model.scaling` -- strong-scaling bookkeeping (speedup, parallel
  efficiency, ideal curves) used by the Fig 1 / Fig 8 / Fig 10 harnesses.
"""

from repro.model.cache_reuse import (
    expected_seed_frequency,
    seed_reuse_probability,
    reuse_probability_curve,
    simulate_seed_reuse,
)
from repro.model.load_imbalance import (
    imbalance_bound,
    max_load_bound,
    simulate_balls_into_bins,
)
from repro.model.scaling import (
    speedup,
    parallel_efficiency,
    ideal_times,
    ScalingSeries,
)

__all__ = [
    "expected_seed_frequency",
    "seed_reuse_probability",
    "reuse_probability_curve",
    "simulate_seed_reuse",
    "imbalance_bound",
    "max_load_bound",
    "simulate_balls_into_bins",
    "speedup",
    "parallel_efficiency",
    "ideal_times",
    "ScalingSeries",
]
