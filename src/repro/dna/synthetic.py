"""Synthetic genomes, contigs and read sets.

The paper evaluates merAligner on production data sets (2.5 billion human
reads, 2.3 billion wheat reads, an E. coli K-12 library) that are not
available here.  This module generates laptop-scale synthetic equivalents that
preserve the properties the aligner's behaviour actually depends on:

* coverage depth ``d`` and read length ``L`` (they set the seed reuse factor
  ``f = d * (1 - (k - 1) / L)`` from section III-B),
* repeat content (it determines how many targets fail the single-copy-seed
  test that gates the exact-match optimization),
* contig length distribution (targets much longer than reads drive target
  cache reuse),
* read ordering (grouped-by-region vs randomly permuted, which is the
  Table I load-balancing experiment),
* paired-end structure and strand of origin.

Every read records its ground-truth origin so integration tests can assert
that the aligner recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.dna.errors import ReadErrorModel
from repro.dna.sequence import random_dna, reverse_complement
from repro.dna.kmer import count_kmers


@dataclass(frozen=True)
class ReadRecord:
    """A synthetic read with its ground-truth origin.

    Attributes:
        name: unique read name (FASTQ-style).
        sequence: the read bases (possibly with substitution errors).
        quality: per-base quality string of the same length.
        contig_id: index of the contig the read was sampled from, or -1 if the
            read was sampled from a genome region not covered by any contig.
        position: 0-based offset of the read start within the contig
            (coordinates of the forward strand), -1 when ``contig_id`` is -1.
        strand: ``+`` if sampled from the forward strand, ``-`` otherwise.
        n_errors: number of substituted bases.
        mate_of: name of the paired mate, or empty string for unpaired reads.
    """

    name: str
    sequence: str
    quality: str
    contig_id: int = -1
    position: int = -1
    strand: str = "+"
    n_errors: int = 0
    mate_of: str = ""

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise ValueError("sequence and quality must have equal length")
        if self.strand not in ("+", "-"):
            raise ValueError("strand must be '+' or '-'")

    @property
    def is_exact(self) -> bool:
        """True when the read contains no sequencing errors."""
        return self.n_errors == 0


@dataclass(frozen=True)
class GenomeSpec:
    """Parameters of a synthetic genome and its assembly contigs.

    Attributes:
        name: human-readable data-set name.
        genome_length: total genome length in bases.
        repeat_fraction: fraction of the genome covered by copies of repeat
            units (repeats defeat the single-copy-seed property).
        repeat_unit_length: length of each repeat unit.
        n_contigs: number of assembly contigs derived from the genome.
        min_contig_length: shortest contig to emit.
        gc_content: GC fraction of the random background.
    """

    name: str
    genome_length: int
    repeat_fraction: float = 0.05
    repeat_unit_length: int = 400
    n_contigs: int = 32
    min_contig_length: int = 200
    gc_content: float = 0.5

    def __post_init__(self) -> None:
        if self.genome_length <= 0:
            raise ValueError("genome_length must be positive")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise ValueError("repeat_fraction must be in [0, 1)")
        if self.n_contigs <= 0:
            raise ValueError("n_contigs must be positive")

    def scaled(self, factor: float) -> "GenomeSpec":
        """Return a copy with the genome length scaled by *factor*."""
        return replace(self, genome_length=max(1, int(self.genome_length * factor)))


@dataclass(frozen=True)
class ReadSetSpec:
    """Parameters of a synthetic read set.

    Attributes:
        coverage: sequencing depth d (mean number of reads covering a base).
        read_length: read length L in bases.
        error_rate: per-base substitution probability.
        paired: whether to emit paired-end reads.
        insert_size: mean outer distance between paired reads.
        insert_sd: standard deviation of the insert size.
        reverse_strand_fraction: fraction of reads sampled from the reverse
            strand.
        grouped: if True, reads are emitted grouped by genome region (the
            pathological ordering of Table I); if False they are emitted in
            random order (the paper's load-balancing fix).
    """

    coverage: float = 10.0
    read_length: int = 100
    error_rate: float = 0.005
    paired: bool = False
    insert_size: int = 240
    insert_sd: int = 20
    reverse_strand_fraction: float = 0.5
    grouped: bool = False

    def __post_init__(self) -> None:
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if not 0.0 <= self.reverse_strand_fraction <= 1.0:
            raise ValueError("reverse_strand_fraction must be in [0, 1]")

    def n_reads_for(self, genome_length: int) -> int:
        """Number of reads needed to reach ``coverage`` over *genome_length*."""
        return max(1, int(round(self.coverage * genome_length / self.read_length)))


@dataclass
class SyntheticGenome:
    """A synthetic genome together with its derived assembly contigs."""

    spec: GenomeSpec
    genome: str
    contigs: list[str]
    contig_offsets: list[int] = field(default_factory=list)

    @property
    def n_contigs(self) -> int:
        return len(self.contigs)

    def unique_seed_fraction(self, k: int) -> float:
        """Fraction of contig k-mers that occur exactly once across contigs."""
        counts = count_kmers(self.contigs, k)
        if not counts:
            return 0.0
        unique = sum(1 for c in counts.values() if c == 1)
        return unique / len(counts)


def random_genome(length: int, rng: np.random.Generator,
                  gc_content: float = 0.5) -> str:
    """Generate a random genome of *length* bases."""
    return random_dna(length, rng=rng, gc_content=gc_content)


def genome_with_repeats(length: int, rng: np.random.Generator,
                        repeat_fraction: float = 0.05,
                        repeat_unit_length: int = 400,
                        gc_content: float = 0.5) -> str:
    """Generate a genome with interspersed exact repeat copies.

    A single repeat unit is generated and pasted over random positions until
    roughly ``repeat_fraction`` of the genome is covered by repeat copies,
    mimicking the repetitive structure that makes wheat a grand-challenge
    genome and that defeats the single-copy-seed property for some targets.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    background = list(random_dna(length, rng=rng, gc_content=gc_content))
    if repeat_fraction > 0.0 and repeat_unit_length < length:
        unit = random_dna(repeat_unit_length, rng=rng, gc_content=gc_content)
        n_copies = max(2, int(repeat_fraction * length / repeat_unit_length))
        for _ in range(n_copies):
            start = int(rng.integers(0, length - repeat_unit_length + 1))
            background[start:start + repeat_unit_length] = unit
    return "".join(background)


def derive_contigs(genome: str, n_contigs: int, rng: np.random.Generator,
                   min_contig_length: int = 200,
                   gap_fraction: float = 0.02) -> tuple[list[str], list[int]]:
    """Split a genome into Meraculous-style contigs.

    The genome is cut at ``n_contigs - 1`` random positions; a small fraction
    of bases around each cut is dropped to model the inter-contig gaps that
    the scaffolding step (the consumer of merAligner's output) later closes.

    Returns:
        ``(contigs, offsets)`` where ``offsets[i]`` is the genome coordinate
        of the first base of ``contigs[i]``.
    """
    if n_contigs <= 0:
        raise ValueError("n_contigs must be positive")
    if not genome:
        return [], []
    if n_contigs == 1:
        return [genome], [0]
    length = len(genome)
    # Choose distinct interior cut points, then drop a small gap at each cut.
    n_cuts = min(n_contigs - 1, max(0, length // max(1, min_contig_length) - 1))
    if n_cuts <= 0:
        return [genome], [0]
    cuts = sorted(int(c) for c in
                  rng.choice(np.arange(min_contig_length, length - min_contig_length),
                             size=n_cuts, replace=False))
    gap = max(0, int(gap_fraction * length / max(1, n_cuts)) // 2)
    bounds = [0] + cuts + [length]
    contigs: list[str] = []
    offsets: list[int] = []
    for i in range(len(bounds) - 1):
        start = bounds[i] + (gap if i > 0 else 0)
        stop = bounds[i + 1] - (gap if i + 1 < len(bounds) - 1 else 0)
        if stop - start >= min_contig_length:
            contigs.append(genome[start:stop])
            offsets.append(start)
    if not contigs:
        return [genome], [0]
    return contigs, offsets


def _locate_in_contig(genome_pos: int, read_len: int,
                      contig_offsets: list[int], contigs: list[str]) -> tuple[int, int]:
    """Map a genome coordinate to ``(contig_id, contig_position)``.

    Returns ``(-1, -1)`` if the read does not fall entirely inside one contig.
    """
    for cid, (off, contig) in enumerate(zip(contig_offsets, contigs)):
        if off <= genome_pos and genome_pos + read_len <= off + len(contig):
            return cid, genome_pos - off
    return -1, -1


def sample_reads(synthetic: SyntheticGenome, spec: ReadSetSpec,
                 rng: np.random.Generator,
                 error_model: ReadErrorModel | None = None) -> list[ReadRecord]:
    """Sample a read set from a synthetic genome.

    Reads are sampled uniformly from the genome (not only from contigs), so a
    fraction of reads does not map to any target -- the situation the paper
    identifies as the source of computational load imbalance in Table I.

    With ``spec.paired`` the set is a true paired-end library (see
    :func:`sample_paired_reads`): interleaved R1/R2 mates drawn from the two
    ends of insert-size-distributed templates.
    """
    if spec.paired:
        return sample_paired_reads(synthetic, spec, rng,
                                   error_model=error_model)
    if error_model is None:
        error_model = ReadErrorModel(substitution_rate=spec.error_rate)
    genome = synthetic.genome
    L = spec.read_length
    if L > len(genome):
        raise ValueError("read_length exceeds genome length")
    n_reads = spec.n_reads_for(len(genome))
    starts = rng.integers(0, len(genome) - L + 1, size=n_reads)
    if spec.grouped:
        starts = np.sort(starts)
    reads: list[ReadRecord] = []
    for i, start in enumerate(starts):
        start = int(start)
        fragment = genome[start:start + L]
        strand = "-" if rng.random() < spec.reverse_strand_fraction else "+"
        oriented = reverse_complement(fragment) if strand == "-" else fragment
        mutated, qual = error_model.corrupt(oriented, rng)
        n_errors = sum(1 for a, b in zip(oriented, mutated) if a != b)
        cid, cpos = _locate_in_contig(start, L, synthetic.contig_offsets,
                                      synthetic.contigs)
        reads.append(ReadRecord(
            name=f"{synthetic.spec.name}:read{i:07d}",
            sequence=mutated,
            quality=qual,
            contig_id=cid,
            position=cpos,
            strand=strand,
            n_errors=n_errors,
        ))
    return reads


def sample_paired_reads(synthetic: SyntheticGenome, spec: ReadSetSpec,
                        rng: np.random.Generator,
                        error_model: ReadErrorModel | None = None
                        ) -> list[ReadRecord]:
    """Sample a paired-end library with a configurable insert distribution.

    Templates of length ``Normal(spec.insert_size, spec.insert_sd)`` (clipped
    to at least one read length) are placed uniformly on the genome; R1 is
    the forward-strand read off the template's left end and R2 the
    reverse-complemented read off its right end (the standard FR layout).
    With probability ``spec.reverse_strand_fraction`` the template itself is
    flipped, swapping which mate carries which strand.  Mates are returned
    interleaved (R1_0, R2_0, R1_1, R2_1, ...), cross-linked through
    ``mate_of``, each with its own ground-truth origin -- exactly the layout
    the ``paired`` plan workload consumes.
    """
    if error_model is None:
        error_model = ReadErrorModel(substitution_rate=spec.error_rate)
    genome = synthetic.genome
    L = spec.read_length
    if L > len(genome):
        raise ValueError("read_length exceeds genome length")
    n_pairs = max(1, spec.n_reads_for(len(genome)) // 2)
    inserts = np.clip(
        np.rint(rng.normal(spec.insert_size, spec.insert_sd, size=n_pairs)),
        L, len(genome)).astype(int)
    starts = np.array([int(rng.integers(0, len(genome) - insert + 1))
                       for insert in inserts])
    if spec.grouped:
        order = np.argsort(starts, kind="stable")
        starts, inserts = starts[order], inserts[order]
    reads: list[ReadRecord] = []
    name = synthetic.spec.name
    for i, (start, insert) in enumerate(zip(starts, inserts)):
        start, insert = int(start), int(insert)
        left_start = start
        right_start = start + insert - L
        flipped = rng.random() < spec.reverse_strand_fraction
        # FR layout: one mate forward off one template end, the other
        # reverse-complemented off the opposite end.
        ends = ((left_start, "+"), (right_start, "-"))
        if flipped:
            ends = ((right_start, "-"), (left_start, "+"))
        mates = []
        for mate_number, (mate_start, strand) in enumerate(ends, start=1):
            fragment = genome[mate_start:mate_start + L]
            oriented = (reverse_complement(fragment) if strand == "-"
                        else fragment)
            mutated, qual = error_model.corrupt(oriented, rng)
            n_errors = sum(1 for a, b in zip(oriented, mutated) if a != b)
            cid, cpos = _locate_in_contig(mate_start, L,
                                          synthetic.contig_offsets,
                                          synthetic.contigs)
            mates.append(ReadRecord(
                name=f"{name}:pair{i:07d}/{mate_number}",
                sequence=mutated,
                quality=qual,
                contig_id=cid,
                position=cpos,
                strand=strand,
                n_errors=n_errors,
            ))
        reads.append(replace(mates[0], mate_of=mates[1].name))
        reads.append(replace(mates[1], mate_of=mates[0].name))
    return reads


def make_dataset(genome_spec: GenomeSpec, read_spec: ReadSetSpec,
                 seed: int = 0) -> tuple[SyntheticGenome, list[ReadRecord]]:
    """Generate a full (genome, contigs, reads) data set from specs.

    This is the one-call entry point used by examples, tests and benchmarks.
    """
    rng = np.random.default_rng(seed)
    genome = genome_with_repeats(
        genome_spec.genome_length, rng,
        repeat_fraction=genome_spec.repeat_fraction,
        repeat_unit_length=genome_spec.repeat_unit_length,
        gc_content=genome_spec.gc_content,
    )
    contigs, offsets = derive_contigs(
        genome, genome_spec.n_contigs, rng,
        min_contig_length=genome_spec.min_contig_length,
    )
    synthetic = SyntheticGenome(spec=genome_spec, genome=genome,
                                contigs=contigs, contig_offsets=offsets)
    reads = sample_reads(synthetic, read_spec, rng)
    return synthetic, reads


#: Scaled-down stand-in for the 4.64 Mbp E. coli K-12 MG1655 data set (Fig 11).
ECOLI_LIKE = GenomeSpec(name="ecoli-like", genome_length=200_000,
                        repeat_fraction=0.01, repeat_unit_length=300,
                        n_contigs=1, min_contig_length=200)

#: Scaled-down stand-in for the human NA12878 data set (Figs 1, 8, 9, 10; Tables I, II).
HUMAN_LIKE = GenomeSpec(name="human-like", genome_length=400_000,
                        repeat_fraction=0.05, repeat_unit_length=400,
                        n_contigs=64, min_contig_length=300)

#: Scaled-down stand-in for the grand-challenge hexaploid wheat data set (Fig 1).
WHEAT_LIKE = GenomeSpec(name="wheat-like", genome_length=800_000,
                        repeat_fraction=0.20, repeat_unit_length=500,
                        n_contigs=128, min_contig_length=300)
