"""Sequencing error model for synthetic reads.

Short-read data sets like the paper's human (Illumina, ~101 bp) and wheat
libraries have low per-base substitution error rates.  We model substitution
errors only (no indels), which matches the dominant Illumina error mode and
keeps the ground-truth read origin exactly addressable for recall tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dna.sequence import codes_to_sequence, sequence_to_codes


def apply_substitutions(sequence: str, error_rate: float,
                        rng: np.random.Generator) -> tuple[str, int]:
    """Apply i.i.d. substitution errors to *sequence*.

    Each base is flipped to one of the three other bases with probability
    *error_rate*.

    Returns:
        ``(mutated_sequence, n_errors)``.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    if error_rate == 0.0 or not sequence:
        return sequence, 0
    codes = sequence_to_codes(sequence)
    mask = rng.random(codes.size) < error_rate
    n_errors = int(mask.sum())
    if n_errors == 0:
        return sequence, 0
    # Shift by 1..3 modulo 4 guarantees the base actually changes.
    shifts = rng.integers(1, 4, size=n_errors).astype(np.uint8)
    codes[mask] = (codes[mask] + shifts) % 4
    return codes_to_sequence(codes), n_errors


@dataclass(frozen=True)
class ReadErrorModel:
    """Parameters of the synthetic read error process.

    Attributes:
        substitution_rate: per-base substitution probability.
        quality_high: Phred-like quality character for correct bases.
        quality_low: quality character assigned to substituted bases.
    """

    substitution_rate: float = 0.005
    quality_high: str = "I"
    quality_low: str = "#"

    def __post_init__(self) -> None:
        if not 0.0 <= self.substitution_rate <= 1.0:
            raise ValueError("substitution_rate must be within [0, 1]")
        if len(self.quality_high) != 1 or len(self.quality_low) != 1:
            raise ValueError("quality characters must be single characters")

    def corrupt(self, sequence: str, rng: np.random.Generator) -> tuple[str, str]:
        """Return ``(mutated_sequence, quality_string)`` for one read."""
        mutated, _ = apply_substitutions(sequence, self.substitution_rate, rng)
        qual = "".join(
            self.quality_high if a == b else self.quality_low
            for a, b in zip(sequence, mutated)
        )
        return mutated, qual

    @staticmethod
    def error_free() -> "ReadErrorModel":
        """An error model that never mutates bases (useful in tests)."""
        return ReadErrorModel(substitution_rate=0.0)
