"""Seed (k-mer) extraction and hashing (paper sections II-A and VI-C.1).

A *seed* is a length-k substring of a target or query sequence.  Every target
of length L contributes exactly ``L - k + 1`` seeds.  Seeds are mapped to the
owning processor with the djb2 hash, which the paper credits for the near
perfect balance of distinct seeds across processors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator

from repro.dna.sequence import reverse_complement


@dataclass(frozen=True)
class Seed:
    """A seed extracted from a target sequence.

    Attributes:
        kmer: the seed string of length k.
        target_id: identifier of the target sequence it came from.
        offset: 0-based offset of the seed's first base within the target.
    """

    kmer: str
    target_id: int
    offset: int


def djb2_hash(key: str) -> int:
    """The djb2 string hash used for the seed -> processor map.

    Returns an unsigned 64-bit value.  The paper reports that djb2 yields an
    almost perfectly balanced assignment of distinct seeds to processors.
    """
    h = 5381
    for ch in key:
        h = ((h << 5) + h + ord(ch)) & 0xFFFFFFFFFFFFFFFF
    return h


def canonical_kmer(kmer: str) -> str:
    """Return the lexicographically smaller of *kmer* and its reverse complement.

    Canonicalisation lets one index entry serve both strands.
    """
    rc = reverse_complement(kmer)
    return kmer if kmer <= rc else rc


def extract_kmers(sequence: str, k: int) -> Iterator[str]:
    """Yield every k-mer of *sequence* in order of appearance.

    A sequence shorter than *k* yields nothing.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    for i in range(len(sequence) - k + 1):
        yield sequence[i:i + k]


def kmer_positions(sequence: str, k: int) -> Iterator[tuple[str, int]]:
    """Yield ``(kmer, offset)`` pairs for every k-mer of *sequence*."""
    if k <= 0:
        raise ValueError("k must be positive")
    for i in range(len(sequence) - k + 1):
        yield sequence[i:i + k], i


def extract_seeds(target_id: int, sequence: str, k: int) -> list[Seed]:
    """Extract all :class:`Seed` records from one target sequence.

    This is the per-processor EXTRACTSEEDS step of Algorithm 1: the caller is
    expected to invoke it for every target sequence it owns.
    """
    return [Seed(kmer=kmer, target_id=target_id, offset=off)
            for kmer, off in kmer_positions(sequence, k)]


def count_kmers(sequences: list[str] | tuple[str, ...], k: int) -> Counter:
    """Count occurrences of every k-mer across *sequences*.

    Used by tests and by the single-copy-seed analysis to cross-check the
    occurrence counts accumulated inside the distributed seed index.
    """
    counts: Counter = Counter()
    for seq in sequences:
        for kmer in extract_kmers(seq, k):
            counts[kmer] += 1
    return counts
