"""2-bit DNA compression (paper section V-C).

merAligner packs DNA into 2 bits per base, reducing the memory footprint and
the bytes moved by communication events by 4x.  :class:`PackedSequence` is the
unit stored in the simulated PGAS shared heap and transferred by the target
fetch path, so the communication-volume accounting in the cost model sees the
compressed size exactly as the real system would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dna.sequence import codes_to_sequence, sequence_to_codes

_BASES_PER_BYTE = 4


def packed_nbytes(n_bases: int) -> int:
    """Return the number of bytes needed to store *n_bases* at 2 bits/base."""
    if n_bases < 0:
        raise ValueError("n_bases must be non-negative")
    return (n_bases + _BASES_PER_BYTE - 1) // _BASES_PER_BYTE


def pack_sequence(sequence: str) -> np.ndarray:
    """Pack a DNA string into a ``uint8`` array at 2 bits per base.

    Base ``i`` occupies bits ``2*(i % 4) .. 2*(i % 4)+1`` of byte ``i // 4``
    (little-endian within the byte).  The length is *not* stored; callers keep
    it alongside (see :class:`PackedSequence`).
    """
    codes = sequence_to_codes(sequence)
    n = codes.size
    padded = np.zeros(packed_nbytes(n) * _BASES_PER_BYTE, dtype=np.uint8)
    padded[:n] = codes
    lanes = padded.reshape(-1, _BASES_PER_BYTE)
    packed = (lanes[:, 0]
              | (lanes[:, 1] << 2)
              | (lanes[:, 2] << 4)
              | (lanes[:, 3] << 6))
    return packed.astype(np.uint8)


def unpack_sequence(packed: np.ndarray, length: int) -> str:
    """Unpack a 2-bit packed array produced by :func:`pack_sequence`.

    Args:
        packed: the packed byte array.
        length: number of bases originally packed (to drop padding).
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if length < 0:
        raise ValueError("length must be non-negative")
    if packed.size * _BASES_PER_BYTE < length:
        raise ValueError("packed buffer too short for requested length")
    codes = np.empty((packed.size, _BASES_PER_BYTE), dtype=np.uint8)
    codes[:, 0] = packed & 0x3
    codes[:, 1] = (packed >> 2) & 0x3
    codes[:, 2] = (packed >> 4) & 0x3
    codes[:, 3] = (packed >> 6) & 0x3
    return codes_to_sequence(codes.reshape(-1)[:length])


@dataclass(frozen=True)
class PackedSequence:
    """A 2-bit packed DNA sequence with its length.

    Attributes:
        data: packed byte buffer (read-only by convention).
        length: number of bases encoded.
    """

    data: np.ndarray
    length: int

    @classmethod
    def from_string(cls, sequence: str) -> "PackedSequence":
        """Pack *sequence* into a :class:`PackedSequence`."""
        return cls(data=pack_sequence(sequence), length=len(sequence))

    def to_string(self) -> str:
        """Unpack back to the original DNA string."""
        return unpack_sequence(self.data, self.length)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes (what a remote fetch would transfer)."""
        return int(self.data.size)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.length

    def slice(self, start: int, stop: int) -> str:
        """Return the unpacked substring ``[start, stop)``.

        The whole buffer is unpacked and sliced; this mirrors fetching a
        target then extracting the aligned window, which is how merAligner
        uses target sequences after a (cached) fetch.
        """
        if start < 0 or stop > self.length or start > stop:
            raise IndexError("slice out of bounds")
        return self.to_string()[start:stop]
