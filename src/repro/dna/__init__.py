"""DNA substrate: sequences, 2-bit compression, k-mer/seed extraction, synthetic data.

This subpackage provides everything merAligner needs to represent and
manipulate DNA sequences:

* :mod:`repro.dna.sequence` -- validation, reverse complement, ASCII/numeric
  conversions used throughout the library.
* :mod:`repro.dna.compression` -- the 2-bit packed representation the paper
  uses to cut memory footprint and communication volume by 4x.
* :mod:`repro.dna.kmer` -- seed (k-mer) extraction from targets and queries,
  the djb2 hash used for the seed -> processor map, and canonicalisation.
* :mod:`repro.dna.synthetic` -- synthetic genome / contig / read generators
  standing in for the paper's human, wheat and E. coli production data sets.
* :mod:`repro.dna.errors` -- the sequencing-error model applied to reads.
"""

from repro.dna.sequence import (
    ALPHABET,
    BASE_TO_CODE,
    CODE_TO_BASE,
    complement,
    is_valid_dna,
    random_dna,
    reverse_complement,
    sequence_to_codes,
    codes_to_sequence,
)
from repro.dna.compression import (
    PackedSequence,
    pack_sequence,
    unpack_sequence,
    packed_nbytes,
)
from repro.dna.kmer import (
    Seed,
    djb2_hash,
    canonical_kmer,
    extract_kmers,
    extract_seeds,
    kmer_positions,
    count_kmers,
)
from repro.dna.errors import ReadErrorModel, apply_substitutions
from repro.dna.synthetic import (
    ReadRecord,
    SyntheticGenome,
    GenomeSpec,
    ReadSetSpec,
    random_genome,
    genome_with_repeats,
    derive_contigs,
    sample_reads,
    sample_paired_reads,
    make_dataset,
    ECOLI_LIKE,
    HUMAN_LIKE,
    WHEAT_LIKE,
)

__all__ = [
    "ALPHABET",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "complement",
    "is_valid_dna",
    "random_dna",
    "reverse_complement",
    "sequence_to_codes",
    "codes_to_sequence",
    "PackedSequence",
    "pack_sequence",
    "unpack_sequence",
    "packed_nbytes",
    "Seed",
    "djb2_hash",
    "canonical_kmer",
    "extract_kmers",
    "extract_seeds",
    "kmer_positions",
    "count_kmers",
    "ReadErrorModel",
    "apply_substitutions",
    "ReadRecord",
    "SyntheticGenome",
    "GenomeSpec",
    "ReadSetSpec",
    "random_genome",
    "genome_with_repeats",
    "derive_contigs",
    "sample_reads",
    "sample_paired_reads",
    "make_dataset",
    "ECOLI_LIKE",
    "HUMAN_LIKE",
    "WHEAT_LIKE",
]
