"""Basic DNA sequence utilities.

Sequences are plain Python ``str`` objects over the alphabet ``ACGT`` at the
public API surface.  Hot paths (compression, vectorised Smith-Waterman)
convert to numpy ``uint8`` code arrays via :func:`sequence_to_codes`.
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in the canonical code order (A=0, C=1, G=2, T=3).
ALPHABET = "ACGT"

#: Mapping from base character to its 2-bit code.
BASE_TO_CODE = {"A": 0, "C": 1, "G": 2, "T": 3}

#: Mapping from 2-bit code back to base character.
CODE_TO_BASE = {0: "A", 1: "C", 2: "G", 3: "T"}

_COMPLEMENT = str.maketrans("ACGTacgtN", "TGCAtgcaN")

# ASCII -> code lookup table (255 marks invalid characters).
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_base)] = _code
    _ASCII_TO_CODE[ord(_base.lower())] = _code

_CODE_TO_ASCII = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8).copy()


def is_valid_dna(sequence: str) -> bool:
    """Return True if *sequence* consists only of upper-case ``ACGT`` bases.

    Empty sequences are considered valid (they contain no invalid base).
    """
    return all(base in BASE_TO_CODE for base in sequence)


def complement(sequence: str) -> str:
    """Return the base-wise complement of *sequence* (A<->T, C<->G)."""
    return sequence.translate(_COMPLEMENT)


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of *sequence*.

    This is the sequence of the opposite strand read 5'->3'; aligners use it
    to map reads sampled from the reverse strand.
    """
    return sequence.translate(_COMPLEMENT)[::-1]


def sequence_to_codes(sequence: str) -> np.ndarray:
    """Convert a DNA string to a ``uint8`` array of 2-bit codes (A=0..T=3).

    Raises:
        ValueError: if the sequence contains a character outside ``ACGTacgt``.
    """
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    codes = _ASCII_TO_CODE[raw]
    if codes.size and codes.max() == 255:
        bad = sequence[int(np.argmax(codes == 255))]
        raise ValueError(f"invalid DNA base {bad!r} in sequence")
    return codes


def codes_to_sequence(codes: np.ndarray) -> str:
    """Convert a ``uint8`` code array (values 0..3) back to a DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > 3:
        raise ValueError("code array contains values outside 0..3")
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


def random_dna(length: int, rng: np.random.Generator | None = None,
               gc_content: float = 0.5) -> str:
    """Generate a uniformly random DNA string of *length* bases.

    Args:
        length: number of bases to generate.
        rng: numpy random generator; a fresh default generator is used when
            omitted (non-reproducible).
        gc_content: probability mass assigned to G+C combined; A/T and G/C are
            each split evenly.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be within [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(4, size=length, p=[at, gc, gc, at]).astype(np.uint8)
    return codes_to_sequence(codes)
