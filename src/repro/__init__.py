"""merAligner reproduction: a fully parallel seed-and-extend sequence aligner.

This package reimplements, in Python on a simulated PGAS runtime, the system
described in *merAligner: A Fully Parallel Sequence Aligner* (Georganas et
al., IPDPS 2015): a distributed-memory short-read aligner whose every phase --
parallel I/O, distributed seed index construction with aggregating stores,
software-cached one-sided lookups, exact-match fast path, load balancing by
random permutation, and SIMD-style Smith-Waterman extension -- is parallel.

Quickstart::

    from repro import MerAligner, AlignerConfig, make_dataset, HUMAN_LIKE, ReadSetSpec

    genome, reads = make_dataset(HUMAN_LIKE.scaled(0.05), ReadSetSpec(coverage=4), seed=1)
    aligner = MerAligner(AlignerConfig(seed_length=31))
    report = aligner.run(genome.contigs, reads, n_ranks=8)
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every figure and table.
"""

from repro.core import AlignerConfig, AlignerReport, MerAligner
from repro.core.stats import AlignmentCounters
from repro.dna import (
    GenomeSpec,
    ReadSetSpec,
    ReadRecord,
    SyntheticGenome,
    make_dataset,
    ECOLI_LIKE,
    HUMAN_LIKE,
    WHEAT_LIKE,
)
from repro.pgas import EDISON_LIKE, LAPTOP_LIKE, MachineModel, PgasRuntime
from repro.baselines import BwaLikeAligner, BowtieLikeAligner, PMapFramework

__version__ = "1.0.0"

__all__ = [
    "MerAligner",
    "AlignerConfig",
    "AlignerReport",
    "AlignmentCounters",
    "GenomeSpec",
    "ReadSetSpec",
    "ReadRecord",
    "SyntheticGenome",
    "make_dataset",
    "ECOLI_LIKE",
    "HUMAN_LIKE",
    "WHEAT_LIKE",
    "EDISON_LIKE",
    "LAPTOP_LIKE",
    "MachineModel",
    "PgasRuntime",
    "BwaLikeAligner",
    "BowtieLikeAligner",
    "PMapFramework",
    "__version__",
]
