"""merAligner reproduction: a fully parallel seed-and-extend sequence aligner.

This package reimplements, in Python on a simulated PGAS runtime, the system
described in *merAligner: A Fully Parallel Sequence Aligner* (Georganas et
al., IPDPS 2015): a distributed-memory short-read aligner whose every phase --
parallel I/O, distributed seed index construction with aggregating stores,
software-cached one-sided lookups, exact-match fast path, load balancing by
random permutation, and SIMD-style Smith-Waterman extension -- is parallel.

Quickstart (a runnable doctest -- scale the genome spec up for real runs):

    >>> from repro import api, make_dataset, ECOLI_LIKE, ReadSetSpec
    >>> genome, reads = make_dataset(ECOLI_LIKE.scaled(0.02),
    ...                              ReadSetSpec(coverage=2), seed=1)
    >>> report = api.align(genome.contigs, reads, n_ranks=4)
    >>> report.counters.reads_processed == len(reads)
    True
    >>> report.counters.aligned_fraction >= 0.9
    True

:mod:`repro.api` is the documented public surface: one-shot runs
(``api.align`` / ``api.count`` / ``api.screen``), composable stage pipelines
(``api.plan`` / ``api.run_plan`` and the stage classes), resident sessions
(``api.prepare``) and the socket service (``api.serve``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every figure and table.
"""

from repro.core import AlignerConfig, AlignerReport, MerAligner
from repro.core.plan import AlignmentPlan, PlanResult, PlanRunner
from repro.core.stats import AlignmentCounters
from repro.dna import (
    GenomeSpec,
    ReadSetSpec,
    ReadRecord,
    SyntheticGenome,
    make_dataset,
    ECOLI_LIKE,
    HUMAN_LIKE,
    WHEAT_LIKE,
)
from repro.pgas import EDISON_LIKE, LAPTOP_LIKE, MachineModel, PgasRuntime
from repro.baselines import BwaLikeAligner, BowtieLikeAligner, PMapFramework
from repro import api

__version__ = "1.7.0"

__all__ = [
    "api",
    "MerAligner",
    "AlignerConfig",
    "AlignerReport",
    "AlignmentCounters",
    "AlignmentPlan",
    "PlanResult",
    "PlanRunner",
    "GenomeSpec",
    "ReadSetSpec",
    "ReadRecord",
    "SyntheticGenome",
    "make_dataset",
    "ECOLI_LIKE",
    "HUMAN_LIKE",
    "WHEAT_LIKE",
    "EDISON_LIKE",
    "LAPTOP_LIKE",
    "MachineModel",
    "PgasRuntime",
    "BwaLikeAligner",
    "BowtieLikeAligner",
    "PMapFramework",
    "__version__",
]
