"""Tests for the BWA-like / Bowtie2-like baseline aligners and pMap driver."""

import pytest

from repro.baselines.base import BaselineCostModel
from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.dna.sequence import reverse_complement
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, ReadRecord, make_dataset


@pytest.fixture(scope="module")
def dataset():
    spec = GenomeSpec(name="bl", genome_length=6000, n_contigs=3,
                      repeat_fraction=0.0, min_contig_length=200)
    return make_dataset(spec, ReadSetSpec(coverage=1.5, read_length=60,
                                          error_rate=0.005), seed=21)


class TestBaselineAligner:
    def test_build_index_required(self):
        aligner = BwaLikeAligner(seed_length=21)
        read = ReadRecord(name="r", sequence="ACGT" * 10, quality="I" * 40)
        with pytest.raises(RuntimeError):
            aligner.align_read(read)

    def test_index_build_time_scales_with_input(self):
        small = BwaLikeAligner(seed_length=21)
        large = BwaLikeAligner(seed_length=21)
        t_small = small.build_index(["ACGT" * 100])
        t_large = large.build_index(["ACGT" * 1000])
        assert t_large > t_small

    def test_perfect_read_aligns_to_origin(self, dataset):
        genome, _ = dataset
        aligner = BwaLikeAligner(seed_length=21)
        aligner.build_index(genome.contigs)
        contig_id = 0
        read_seq = genome.contigs[contig_id][50:110]
        read = ReadRecord(name="q", sequence=read_seq, quality="I" * 60)
        alignments, seconds = aligner.align_read(read)
        assert seconds > 0
        hits = [a for a in alignments if a.target_id == contig_id
                and a.target_start == 50]
        assert hits
        assert hits[0].score == 120  # perfect 60bp match at +2/match

    def test_reverse_strand_read_aligns(self, dataset):
        genome, _ = dataset
        aligner = BwaLikeAligner(seed_length=21)
        aligner.build_index(genome.contigs)
        fragment = genome.contigs[1][100:160]
        read = ReadRecord(name="rc", sequence=reverse_complement(fragment),
                          quality="I" * 60)
        alignments, _ = aligner.align_read(read)
        assert any(a.target_id == 1 and a.strand == "-" for a in alignments)

    def test_aligned_fraction_tracking(self, dataset):
        genome, reads = dataset
        aligner = BwaLikeAligner(seed_length=21)
        aligner.build_index(genome.contigs)
        aligner.map_reads(reads[:60])
        assert aligner.reads_processed == 60
        assert 0.5 < aligner.aligned_fraction <= 1.0

    def test_invalid_seed_length(self):
        with pytest.raises(ValueError):
            BwaLikeAligner(seed_length=0)

    def test_seed_offsets_policy(self):
        bwa = BwaLikeAligner(seed_length=20)
        bowtie = BowtieLikeAligner()
        assert bwa.seed_offsets(10) == []
        assert len(bowtie.seed_offsets(100)) <= len(bwa.seed_offsets(100)) + 5

    def test_bowtie_seed_length_capped(self):
        aligner = BowtieLikeAligner(seed_length=51)
        assert aligner.seed_length == BowtieLikeAligner.MAX_SEED_LENGTH

    def test_bowtie_index_slower_than_bwa(self, dataset):
        genome, _ = dataset
        bwa = BwaLikeAligner(seed_length=21)
        bowtie = BowtieLikeAligner()
        assert bowtie.build_index(genome.contigs) > bwa.build_index(genome.contigs)


class TestPMapFramework:
    def test_report_fields(self, dataset):
        genome, reads = dataset
        pmap = PMapFramework(lambda: BwaLikeAligner(seed_length=21), n_instances=4)
        report = pmap.run(genome.contigs, reads[:40])
        assert report.tool_name == "bwa-mem-like"
        assert report.index_construction_time > 0
        assert report.read_partition_time > 0
        assert report.reads_processed == 40
        assert len(report.per_read_seconds) == 40
        assert 0 < report.aligned_fraction <= 1.0
        assert report.total_time > report.mapping_time
        assert report.total_time_with_partitioning > report.total_time

    def test_mapping_time_decreases_with_instances(self, dataset):
        genome, reads = dataset
        pmap = PMapFramework(lambda: BwaLikeAligner(seed_length=21), n_instances=2)
        report = pmap.run(genome.contigs, reads[:60])
        t1 = report.mapping_time_at(1)
        t4 = report.mapping_time_at(4)
        t16 = report.mapping_time_at(16)
        assert t1 >= t4 >= t16
        assert report.mapping_time == report.mapping_time_at(2)

    def test_index_time_does_not_scale(self, dataset):
        """The structural point of Table II: the index build is serial, so the
        total time flattens out no matter how many instances map."""
        genome, reads = dataset
        pmap = PMapFramework(lambda: BwaLikeAligner(seed_length=21), n_instances=4)
        report = pmap.run(genome.contigs, reads[:60])
        assert report.total_time_at(1024) >= report.index_construction_time

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PMapFramework(BwaLikeAligner, n_instances=0)
        with pytest.raises(ValueError):
            PMapFramework(BwaLikeAligner, n_instances=1, instances_per_node=0)

    def test_mapping_time_at_invalid(self, dataset):
        genome, reads = dataset
        report = PMapFramework(lambda: BwaLikeAligner(seed_length=21),
                               n_instances=2).run(genome.contigs, reads[:10])
        with pytest.raises(ValueError):
            report.mapping_time_at(0)


class TestCostModel:
    def test_positive_costs(self):
        costs = BaselineCostModel()
        assert costs.index_build_per_char > 0
        assert costs.fm_step > 0
        assert costs.sw_cell > 0
