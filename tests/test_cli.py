"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io.fasta import read_fasta
from repro.io.fastq import read_fastq


@pytest.fixture
def simulated_dir(tmp_path):
    out = tmp_path / "data"
    code = main(["simulate", "--output-dir", str(out),
                 "--genome-length", "8000", "--n-contigs", "10",
                 "--coverage", "2", "--read-length", "60", "--seed", "5"])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_fasta_and_fastq(self, simulated_dir):
        contigs = read_fasta(simulated_dir / "contigs.fa")
        reads = read_fastq(simulated_dir / "reads.fastq")
        assert len(contigs) >= 2
        assert len(reads) > 100
        assert all(len(r.sequence) == 60 for r in reads[:10])

    def test_seqdb_output(self, tmp_path):
        out = tmp_path / "seqdb_data"
        code = main(["simulate", "--output-dir", str(out),
                     "--genome-length", "5000", "--n-contigs", "4",
                     "--coverage", "1", "--read-length", "50",
                     "--reads-format", "seqdb"])
        assert code == 0
        assert (out / "reads.seqdb").exists()
        assert not (out / "reads.fastq").exists()

    def test_deterministic_given_seed(self, tmp_path):
        out1, out2 = tmp_path / "a", tmp_path / "b"
        for out in (out1, out2):
            main(["simulate", "--output-dir", str(out), "--genome-length", "4000",
                  "--n-contigs", "4", "--coverage", "1", "--seed", "9"])
        assert (out1 / "contigs.fa").read_text() == (out2 / "contigs.fa").read_text()


class TestAlign:
    def test_align_writes_sam(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "4", "--seed-length", "21", "--seed-stride", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "aligned" in output
        assert "phase breakdown" in output
        lines = sam_path.read_text().splitlines()
        assert lines[0].startswith("@HD")
        body = [line for line in lines if not line.startswith("@")]
        assert len(body) > 100

    def test_align_backend_process_sam_byte_identical(self, simulated_dir,
                                                      tmp_path, capsys):
        """The acceptance property: --backend process at 4 ranks writes the
        same SAM bytes as --backend cooperative."""
        outputs = {}
        for backend in ("cooperative", "process"):
            sam_path = tmp_path / f"{backend}.sam"
            code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(sam_path),
                         "--ranks", "4", "--seed-length", "21",
                         "--seed-stride", "2", "--backend", backend])
            assert code == 0
            assert f"backend: {backend}" in capsys.readouterr().out
            outputs[backend] = sam_path.read_bytes()
        assert outputs["process"] == outputs["cooperative"]

    def test_align_with_optimizations_disabled(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out_noopt.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "2", "--seed-length", "21", "--seed-stride", "4",
                     "--no-aggregating-stores", "--no-caches",
                     "--no-exact-match", "--no-permute"])
        assert code == 0
        assert "exact-match fast path: 0.0%" in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_table(self, simulated_dir, capsys):
        code = main(["compare", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        output = capsys.readouterr().out
        assert "merAligner" in output
        assert "bwa-mem-like" in output
        assert "bowtie2-like" in output


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_align_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["align", "--targets", "x.fa"])
