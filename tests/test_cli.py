"""Tests for the command-line interface."""

import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.io.fasta import read_fasta
from repro.io.fastq import read_fastq


@pytest.fixture
def simulated_dir(tmp_path):
    out = tmp_path / "data"
    code = main(["simulate", "--output-dir", str(out),
                 "--genome-length", "8000", "--n-contigs", "10",
                 "--coverage", "2", "--read-length", "60", "--seed", "5"])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_fasta_and_fastq(self, simulated_dir):
        contigs = read_fasta(simulated_dir / "contigs.fa")
        reads = read_fastq(simulated_dir / "reads.fastq")
        assert len(contigs) >= 2
        assert len(reads) > 100
        assert all(len(r.sequence) == 60 for r in reads[:10])

    def test_seqdb_output(self, tmp_path):
        out = tmp_path / "seqdb_data"
        code = main(["simulate", "--output-dir", str(out),
                     "--genome-length", "5000", "--n-contigs", "4",
                     "--coverage", "1", "--read-length", "50",
                     "--reads-format", "seqdb"])
        assert code == 0
        assert (out / "reads.seqdb").exists()
        assert not (out / "reads.fastq").exists()

    def test_deterministic_given_seed(self, tmp_path):
        out1, out2 = tmp_path / "a", tmp_path / "b"
        for out in (out1, out2):
            main(["simulate", "--output-dir", str(out), "--genome-length", "4000",
                  "--n-contigs", "4", "--coverage", "1", "--seed", "9"])
        assert (out1 / "contigs.fa").read_text() == (out2 / "contigs.fa").read_text()


class TestAlign:
    def test_align_writes_sam(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "4", "--seed-length", "21", "--seed-stride", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "aligned" in output
        assert "phase breakdown" in output
        lines = sam_path.read_text().splitlines()
        assert lines[0].startswith("@HD")
        body = [line for line in lines if not line.startswith("@")]
        assert len(body) > 100

    def test_align_backend_process_sam_byte_identical(self, simulated_dir,
                                                      tmp_path, capsys):
        """The acceptance property: --backend process at 4 ranks writes the
        same SAM bytes as --backend cooperative."""
        outputs = {}
        for backend in ("cooperative", "process"):
            sam_path = tmp_path / f"{backend}.sam"
            code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(sam_path),
                         "--ranks", "4", "--seed-length", "21",
                         "--seed-stride", "2", "--backend", backend])
            assert code == 0
            assert f"backend: {backend}" in capsys.readouterr().out
            outputs[backend] = sam_path.read_bytes()
        assert outputs["process"] == outputs["cooperative"]

    def test_align_with_optimizations_disabled(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out_noopt.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "2", "--seed-length", "21", "--seed-stride", "4",
                     "--no-aggregating-stores", "--no-caches",
                     "--no-exact-match", "--no-permute"])
        assert code == 0
        assert "exact-match fast path: 0.0%" in capsys.readouterr().out


class TestJsonReport:
    def test_align_writes_json_report(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out.sam"
        json_path = tmp_path / "report.json"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path), "--json-report", str(json_path),
                     "--ranks", "4", "--seed-length", "21", "--seed-stride", "2"])
        assert code == 0
        assert "wrote JSON report" in capsys.readouterr().out
        report = json.loads(json_path.read_text())
        assert report["n_ranks"] == 4
        assert report["config"]["seed_length"] == 21
        assert report["counters"]["reads_processed"] > 0
        assert {p["name"] for p in report["phases"]} >= {"read_targets",
                                                         "align_reads"}
        assert report["times"]["total_time"] > 0
        assert report["comm"]["gets"] > 0
        assert "seed_index" in report["cache_stats"]


class TestServeQuery:
    def test_serve_query_roundtrip(self, simulated_dir, tmp_path, capsys):
        """serve + two queries + stats + shutdown, all through the CLI."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        serve_code: list[int] = []

        def run_server() -> None:
            serve_code.append(main(
                ["serve", "--targets", str(simulated_dir / "contigs.fa"),
                 "--port", str(port), "--ranks", "4", "--seed-length", "21",
                 "--seed-stride", "2", "--max-wait-ms", "5"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        from repro.service.client import SocketAlignmentClient
        client = SocketAlignmentClient(port=port, timeout=60.0)
        deadline = time.monotonic() + 60.0
        while not client.ping():
            assert time.monotonic() < deadline, "server did not come up"
            time.sleep(0.05)

        offline = tmp_path / "offline.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(offline),
                     "--ranks", "4", "--seed-length", "21",
                     "--seed-stride", "2"])
        assert code == 0

        served = tmp_path / "served.sam"
        for _ in range(2):
            code = main(["query", "--port", str(port),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(served)])
            assert code == 0
            assert served.read_bytes() == offline.read_bytes()

        code = main(["query", "--port", str(port), "--stats"])
        assert code == 0
        stats_output = capsys.readouterr().out
        stats = json.loads(stats_output[stats_output.index("{"):])
        assert stats["service"]["requests"] == 2

        code = main(["query", "--port", str(port), "--shutdown"])
        assert code == 0
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert serve_code == [0]

    def test_query_without_action_errors(self, capsys):
        code = main(["query", "--port", "1"])
        assert code == 2
        assert "nothing to do" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_table(self, simulated_dir, capsys):
        code = main(["compare", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        output = capsys.readouterr().out
        assert "merAligner" in output
        assert "bwa-mem-like" in output
        assert "bowtie2-like" in output


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_align_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["align", "--targets", "x.fa"])


class TestVersion:
    def test_version_flag_prints_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestInputFileErrors:
    """Missing/unreadable inputs: exit code 2 + one-line stderr message."""

    def test_align_missing_targets(self, tmp_path, capsys):
        code = main(["align", "--targets", str(tmp_path / "none.fa"),
                     "--reads", str(tmp_path / "none.fq"),
                     "--output", str(tmp_path / "o.sam")])
        assert code == 2
        err = capsys.readouterr().err
        assert "meraligner: error:" in err and "targets file not found" in err

    def test_align_missing_reads(self, simulated_dir, tmp_path, capsys):
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(tmp_path / "none.fq"),
                     "--output", str(tmp_path / "o.sam")])
        assert code == 2
        assert "reads file not found" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["count", "screen"])
    def test_workloads_missing_inputs(self, command, tmp_path, capsys):
        code = main([command, "--targets", str(tmp_path / "none.fa"),
                     "--reads", str(tmp_path / "none.fq"),
                     "--output", str(tmp_path / "o.tsv")])
        assert code == 2
        assert "targets file not found" in capsys.readouterr().err

    def test_compare_missing_inputs(self, tmp_path, capsys):
        code = main(["compare", "--targets", str(tmp_path / "none.fa"),
                     "--reads", str(tmp_path / "none.fq")])
        assert code == 2
        assert "targets file not found" in capsys.readouterr().err

    def test_serve_missing_targets(self, tmp_path, capsys):
        code = main(["serve", "--targets", str(tmp_path / "none.fa"),
                     "--port", "0"])
        assert code == 2
        assert "targets file not found" in capsys.readouterr().err

    def test_directory_as_input_rejected(self, tmp_path, capsys):
        code = main(["align", "--targets", str(tmp_path),
                     "--reads", str(tmp_path / "none.fq"),
                     "--output", str(tmp_path / "o.sam")])
        assert code == 2
        assert "directory" in capsys.readouterr().err


class TestCountScreenCli:
    def test_count_writes_histogram_tsv(self, simulated_dir, tmp_path, capsys):
        out = tmp_path / "counts.tsv"
        code = main(["count", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(out),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        assert "looked up" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        assert lines[0] == "#workload\tcount"
        assert "occurrences\tn_query_seeds" in lines
        body = [line for line in lines if not line.startswith(("#", "occ"))]
        assert body and all("\t" in line for line in body)

    def test_screen_writes_hit_miss_tsv(self, simulated_dir, tmp_path, capsys):
        out = tmp_path / "screen.tsv"
        code = main(["screen", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(out),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        assert "screened" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        assert lines[0] == "#workload\tscreen"
        reads = read_fastq(simulated_dir / "reads.fastq")
        body = [line for line in lines
                if line and not line.startswith(("#", "read\t"))]
        assert len(body) == len(reads)
        assert {line.split("\t")[1] for line in body} <= {"hit", "miss"}

    def test_count_process_backend_byte_identical(self, simulated_dir,
                                                  tmp_path):
        outputs = {}
        for backend in ("cooperative", "process"):
            out = tmp_path / f"counts-{backend}.tsv"
            code = main(["count", "--targets",
                         str(simulated_dir / "contigs.fa"),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(out), "--ranks", "4",
                         "--seed-length", "21", "--backend", backend])
            assert code == 0
            outputs[backend] = out.read_bytes()
        assert outputs["process"] == outputs["cooperative"]

    def test_workload_json_report_has_stages(self, simulated_dir, tmp_path):
        out = tmp_path / "screen.tsv"
        report_path = tmp_path / "screen.json"
        code = main(["screen", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(out), "--json-report", str(report_path),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 3
        assert report["workload"] == "screen"
        assert [s["name"] for s in report["stages"]] == \
            ["read_queries", "exact_path", "emit_screen"]


class TestServeWorkloads:
    def test_query_count_and_screen_roundtrip(self, simulated_dir, tmp_path,
                                              capsys):
        """serve + count/screen queries match the offline subcommands."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        serve_code: list[int] = []

        def run_server() -> None:
            serve_code.append(main(
                ["serve", "--targets", str(simulated_dir / "contigs.fa"),
                 "--port", str(port), "--ranks", "4", "--seed-length", "21",
                 "--max-wait-ms", "5"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        from repro.service.client import SocketAlignmentClient
        client = SocketAlignmentClient(port=port, timeout=60.0)
        deadline = time.monotonic() + 60.0
        while not client.ping():
            assert time.monotonic() < deadline, "server did not come up"
            time.sleep(0.05)

        for workload in ("count", "screen"):
            offline = tmp_path / f"offline-{workload}.tsv"
            code = main([workload, "--targets",
                         str(simulated_dir / "contigs.fa"),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(offline),
                         "--ranks", "4", "--seed-length", "21"])
            assert code == 0
            served = tmp_path / f"served-{workload}.tsv"
            code = main(["query", "--port", str(port),
                         "--workload", workload,
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(served)])
            assert code == 0
            assert served.read_bytes() == offline.read_bytes(), workload

        code = main(["query", "--port", str(port), "--stats"])
        assert code == 0
        stats_output = capsys.readouterr().out
        stats = json.loads(stats_output[stats_output.index("{"):])
        assert stats["schema_version"] == 3
        assert stats["service"]["requests_by_workload"] == {"count": 1,
                                                            "screen": 1}

        code = main(["query", "--port", str(port), "--shutdown"])
        assert code == 0
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert serve_code == [0]
