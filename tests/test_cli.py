"""Tests for the command-line interface."""

import json
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.io.fasta import read_fasta
from repro.io.fastq import read_fastq


@pytest.fixture
def simulated_dir(tmp_path):
    out = tmp_path / "data"
    code = main(["simulate", "--output-dir", str(out),
                 "--genome-length", "8000", "--n-contigs", "10",
                 "--coverage", "2", "--read-length", "60", "--seed", "5"])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_fasta_and_fastq(self, simulated_dir):
        contigs = read_fasta(simulated_dir / "contigs.fa")
        reads = read_fastq(simulated_dir / "reads.fastq")
        assert len(contigs) >= 2
        assert len(reads) > 100
        assert all(len(r.sequence) == 60 for r in reads[:10])

    def test_seqdb_output(self, tmp_path):
        out = tmp_path / "seqdb_data"
        code = main(["simulate", "--output-dir", str(out),
                     "--genome-length", "5000", "--n-contigs", "4",
                     "--coverage", "1", "--read-length", "50",
                     "--reads-format", "seqdb"])
        assert code == 0
        assert (out / "reads.seqdb").exists()
        assert not (out / "reads.fastq").exists()

    def test_deterministic_given_seed(self, tmp_path):
        out1, out2 = tmp_path / "a", tmp_path / "b"
        for out in (out1, out2):
            main(["simulate", "--output-dir", str(out), "--genome-length", "4000",
                  "--n-contigs", "4", "--coverage", "1", "--seed", "9"])
        assert (out1 / "contigs.fa").read_text() == (out2 / "contigs.fa").read_text()


class TestAlign:
    def test_align_writes_sam(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "4", "--seed-length", "21", "--seed-stride", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "aligned" in output
        assert "phase breakdown" in output
        lines = sam_path.read_text().splitlines()
        assert lines[0].startswith("@HD")
        body = [line for line in lines if not line.startswith("@")]
        assert len(body) > 100

    def test_align_backend_process_sam_byte_identical(self, simulated_dir,
                                                      tmp_path, capsys):
        """The acceptance property: --backend process at 4 ranks writes the
        same SAM bytes as --backend cooperative."""
        outputs = {}
        for backend in ("cooperative", "process"):
            sam_path = tmp_path / f"{backend}.sam"
            code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(sam_path),
                         "--ranks", "4", "--seed-length", "21",
                         "--seed-stride", "2", "--backend", backend])
            assert code == 0
            assert f"backend: {backend}" in capsys.readouterr().out
            outputs[backend] = sam_path.read_bytes()
        assert outputs["process"] == outputs["cooperative"]

    def test_align_with_optimizations_disabled(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out_noopt.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path),
                     "--ranks", "2", "--seed-length", "21", "--seed-stride", "4",
                     "--no-aggregating-stores", "--no-caches",
                     "--no-exact-match", "--no-permute"])
        assert code == 0
        assert "exact-match fast path: 0.0%" in capsys.readouterr().out


class TestJsonReport:
    def test_align_writes_json_report(self, simulated_dir, tmp_path, capsys):
        sam_path = tmp_path / "out.sam"
        json_path = tmp_path / "report.json"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(sam_path), "--json-report", str(json_path),
                     "--ranks", "4", "--seed-length", "21", "--seed-stride", "2"])
        assert code == 0
        assert "wrote JSON report" in capsys.readouterr().out
        report = json.loads(json_path.read_text())
        assert report["n_ranks"] == 4
        assert report["config"]["seed_length"] == 21
        assert report["counters"]["reads_processed"] > 0
        assert {p["name"] for p in report["phases"]} >= {"read_targets",
                                                         "align_reads"}
        assert report["times"]["total_time"] > 0
        assert report["comm"]["gets"] > 0
        assert "seed_index" in report["cache_stats"]


class TestServeQuery:
    def test_serve_query_roundtrip(self, simulated_dir, tmp_path, capsys):
        """serve + two queries + stats + shutdown, all through the CLI."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        serve_code: list[int] = []

        def run_server() -> None:
            serve_code.append(main(
                ["serve", "--targets", str(simulated_dir / "contigs.fa"),
                 "--port", str(port), "--ranks", "4", "--seed-length", "21",
                 "--seed-stride", "2", "--max-wait-ms", "5"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        from repro.service.client import SocketAlignmentClient
        client = SocketAlignmentClient(port=port, timeout=60.0)
        deadline = time.monotonic() + 60.0
        while not client.ping():
            assert time.monotonic() < deadline, "server did not come up"
            time.sleep(0.05)

        offline = tmp_path / "offline.sam"
        code = main(["align", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--output", str(offline),
                     "--ranks", "4", "--seed-length", "21",
                     "--seed-stride", "2"])
        assert code == 0

        served = tmp_path / "served.sam"
        for _ in range(2):
            code = main(["query", "--port", str(port),
                         "--reads", str(simulated_dir / "reads.fastq"),
                         "--output", str(served)])
            assert code == 0
            assert served.read_bytes() == offline.read_bytes()

        code = main(["query", "--port", str(port), "--stats"])
        assert code == 0
        stats_output = capsys.readouterr().out
        stats = json.loads(stats_output[stats_output.index("{"):])
        assert stats["service"]["requests"] == 2

        code = main(["query", "--port", str(port), "--shutdown"])
        assert code == 0
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert serve_code == [0]

    def test_query_without_action_errors(self, capsys):
        code = main(["query", "--port", "1"])
        assert code == 2
        assert "nothing to do" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_table(self, simulated_dir, capsys):
        code = main(["compare", "--targets", str(simulated_dir / "contigs.fa"),
                     "--reads", str(simulated_dir / "reads.fastq"),
                     "--ranks", "4", "--seed-length", "21"])
        assert code == 0
        output = capsys.readouterr().out
        assert "merAligner" in output
        assert "bwa-mem-like" in output
        assert "bowtie2-like" in output


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_align_requires_arguments(self):
        with pytest.raises(SystemExit):
            main(["align", "--targets", "x.fa"])
