"""Tests for the pluggable execution-backend subsystem.

Covers the registry, the cooperative/threaded/process backends running the
same SPMD programs, the descriptive broken-barrier failure mode (instead of
the old silent all-``None`` result), cross-backend equivalence of the full
aligner pipeline (byte-identical alignments and SAM output), and the
SharedArray slice cost-model regression.
"""

import threading

import pytest

from repro.backend import (BackendUnavailableError, available_backends,
                           default_backend_name, get_backend, resolve_backend)
from repro.backend.threaded import ThreadedBackend
from repro.core.pipeline import MerAligner
from repro.io.sam import write_sam
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.executor import ThreadedExecutor
from repro.pgas.runtime import PgasRuntime
from repro.pgas.shared import SharedArray

BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)


def make_runtime(n_ranks=4):
    return PgasRuntime(n_ranks=n_ranks, machine=MACHINE)


def exchange_program(ctx, n_increments):
    """A three-phase SPMD generator touching every heap verb."""
    ctx.alloc("box", dict())
    yield "setup"
    ctx.put((ctx.me + 1) % ctx.n_ranks, "box", "token", ctx.me * 10)
    for _ in range(n_increments):
        ctx.fetch_add(0, "counter", 0, 1)
    yield "exchange"
    token = ctx.get(ctx.me, "box", "token")
    missing = ctx.get(ctx.me, "box", "absent", missing_ok=True, default=-1)
    return token, missing


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            get_backend("carrier-pigeon")

    def test_resolve_accepts_instances_and_names(self):
        backend = ThreadedBackend()
        assert resolve_backend(backend) is backend
        assert resolve_backend("cooperative").name == "cooperative"
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_default_backend_name_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "cooperative"
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert default_backend_name() == "process"

    def test_backend_unavailable_is_runtime_error(self):
        assert issubclass(BackendUnavailableError, RuntimeError)


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exchange_program_results(self, backend):
        runtime = make_runtime()
        runtime.heap.alloc(0, "counter", SharedArray(1))
        result = runtime.run_spmd(exchange_program, 25, backend=backend)
        assert result.backend == backend
        assert result.results == [((rank - 1) % 4 * 10, -1) for rank in range(4)]
        # The atomics really are atomic: exact total across ranks.
        assert runtime.heap.segment(0, "counter")[0] == 4 * 25

    def test_phases_and_stats_match_cooperative(self):
        outputs = {}
        for backend in BACKENDS:
            runtime = make_runtime()
            runtime.heap.alloc(0, "counter", SharedArray(1))
            result = runtime.run_spmd(exchange_program, 10, backend=backend)
            stats = result.total_stats
            outputs[backend] = {
                "phases": [phase.name for phase in result.phases],
                "results": result.results,
                "counters": (stats.puts, stats.gets, stats.atomics,
                             stats.barriers, stats.bytes_put, stats.bytes_get,
                             stats.local_ops, stats.on_node_ops,
                             stats.off_node_ops),
            }
        assert outputs["threaded"] == outputs["cooperative"]
        assert outputs["process"] == outputs["cooperative"]

    @pytest.mark.parametrize("backend", ("threaded", "process"))
    def test_plain_function_single_phase(self, backend):
        runtime = make_runtime()
        result = runtime.run_spmd(lambda ctx: ctx.me ** 2, backend=backend,
                                  phase_name="squares")
        assert result.results == [0, 1, 4, 9]
        assert [phase.name for phase in result.phases] == ["squares"]
        assert all(stats.barriers == 1 for stats in result.per_rank_stats)

    def test_process_backend_dynamic_array_allocation(self):
        def program(ctx):
            if ctx.me == 0:
                ctx.alloc("late", SharedArray(8))
            yield "alloc"
            ctx.put(0, "late", ctx.me, ctx.me + 100)
            yield "fill"
            return int(ctx.get(0, "late", ctx.me))

        runtime = make_runtime()
        result = runtime.run_spmd(program, backend="process")
        assert result.results == [100, 101, 102, 103]
        assert list(runtime.heap.segment(0, "late")[0:4]) == [100, 101, 102, 103]

    def test_process_backend_propagates_application_errors(self):
        def failing(ctx):
            yield "warmup"
            if ctx.me == 2:
                raise ValueError("rank 2 exploded")
            yield "work"
            return ctx.me

        runtime = make_runtime()
        with pytest.raises((ValueError, RuntimeError), match="rank 2 exploded"):
            runtime.run_spmd(failing, backend="process")


class TestBrokenBarrierDiagnostics:
    """Satellite: an all-BrokenBarrierError run must raise, not return Nones."""

    def test_threaded_executor_barrier_mismatch_raises(self):
        runtime = make_runtime(2)
        executor = ThreadedExecutor(runtime)

        def mismatched(ctx):
            if ctx.me == 1:
                ctx.barrier()  # rank 0 never joins: count mismatch

        with pytest.raises(RuntimeError, match="BrokenBarrierError"):
            executor.run(mismatched, timeout=2.0)

    def test_threaded_backend_yield_mismatch_raises(self):
        def ragged(ctx):
            yield "common"
            if ctx.me == 0:
                return 0
            yield "extra"
            return ctx.me

        runtime = make_runtime(2)
        backend = ThreadedBackend(timeout=5.0, barrier_timeout=1.0)
        with pytest.raises(RuntimeError,
                           match="barrier-count mismatch|BrokenBarrierError"):
            runtime.run_spmd(ragged, backend=backend)

    def test_threaded_executor_still_propagates_real_errors(self):
        runtime = make_runtime()
        executor = ThreadedExecutor(runtime)

        def failing(ctx):
            if ctx.me == 2:
                raise ValueError("rank 2 exploded")
            ctx.barrier()

        with pytest.raises(ValueError, match="rank 2 exploded"):
            executor.run(failing, timeout=5.0)


class TestSharedArraySliceCharging:
    """Satellite: slice reads/writes are charged for their full extent."""

    def test_slice_write_charged_per_element(self):
        runtime = make_runtime(2)
        runtime.heap.alloc(1, "arr", SharedArray(16, dtype="int64"))
        ctx = runtime.contexts[0]
        ctx.put(1, "arr", slice(0, 8), 7)
        assert ctx.stats.bytes_put == 8 * 8  # eight int64 elements, not one
        ctx.put(1, "arr", 3, 1)
        assert ctx.stats.bytes_put == 8 * 8 + 8  # scalar write: one element

    def test_slice_read_charged_per_element(self):
        runtime = make_runtime(2)
        runtime.heap.alloc(1, "arr", SharedArray(16, dtype="int64", fill=5))
        ctx = runtime.contexts[0]
        ctx.get(1, "arr", slice(2, 12))
        assert ctx.stats.bytes_get == 10 * 8
        ctx.get(1, "arr", 0)
        assert ctx.stats.bytes_get == 10 * 8 + 8

    def test_narrow_dtype_charges_itemsize(self):
        runtime = make_runtime(2)
        runtime.heap.alloc(1, "arr32", SharedArray(16, dtype="int32"))
        ctx = runtime.contexts[0]
        ctx.put(1, "arr32", slice(0, 4), 1)
        ctx.get(1, "arr32", 2)
        assert ctx.stats.bytes_put == 4 * 4
        assert ctx.stats.bytes_get == 4

    def test_index_nbytes_matrix(self):
        array = SharedArray(10, dtype="int64")
        assert array.index_nbytes(0) == 8
        assert array.index_nbytes(slice(0, 10)) == 80
        assert array.index_nbytes(slice(4, None)) == 48
        assert array.index_nbytes(slice(0, 10, 2)) == 40
        assert array.index_nbytes([1, 3, 5]) == 24

    def test_explicit_nbytes_still_wins(self):
        runtime = make_runtime(2)
        runtime.heap.alloc(1, "arr", SharedArray(16))
        ctx = runtime.contexts[0]
        ctx.put(1, "arr", slice(0, 16), 1, nbytes=4)
        assert ctx.stats.bytes_put == 4


def alignment_key(alignment):
    return (alignment.query_name, alignment.target_id, alignment.score,
            alignment.query_start, alignment.query_end,
            alignment.target_start, alignment.target_end, alignment.strand,
            alignment.is_exact, tuple(map(tuple, alignment.cigar or ())),
            alignment.identity)


class TestPipelineCrossBackendEquivalence:
    """Satellite: the same dataset through all three backends (with and
    without the bulk engine) reports identical alignments and SAM output."""

    @pytest.mark.parametrize("bulk_lookups", [False, True])
    def test_alignments_and_sam_identical(self, small_dataset, small_config,
                                          bulk_lookups, tmp_path):
        genome, reads = small_dataset
        reads = reads[:80]
        config = small_config.with_(use_bulk_lookups=bulk_lookups,
                                    lookup_batch_size=16)
        names = [f"contig{i}" for i in range(len(genome.contigs))]
        lengths = [len(c) for c in genome.contigs]
        reference = None
        for backend in BACKENDS:
            report = MerAligner(config).run(genome.contigs, reads, n_ranks=4,
                                            machine=MACHINE, backend=backend)
            keys = [alignment_key(a) for a in report.alignments]
            sam_path = tmp_path / f"{backend}_{bulk_lookups}.sam"
            write_sam(sam_path, report.alignments, names, lengths)
            sam = sam_path.read_bytes()
            if reference is None:
                reference = (keys, sam)
            assert keys == reference[0], f"alignments differ on {backend}"
            assert sam == reference[1], f"SAM output differs on {backend}"
            assert report.config_summary["backend"] == backend

    def test_report_counters_match_without_caches(self, small_dataset,
                                                  small_config):
        """With the (node-shared) caches off, every backend reports identical
        lookup/message counters, not just identical alignments."""
        genome, reads = small_dataset
        reads = reads[:60]
        config = small_config.with_(use_seed_index_cache=False,
                                    use_target_cache=False)
        reference = None
        for backend in BACKENDS:
            report = MerAligner(config).run(genome.contigs, reads, n_ranks=4,
                                            machine=MACHINE, backend=backend)
            stats = report.total_stats
            observed = (report.counters.seed_lookups,
                        report.counters.seed_lookup_hits,
                        report.counters.sw_calls, report.counters.sw_cells,
                        stats.puts, stats.gets, stats.atomics, stats.barriers,
                        stats.bytes_put, stats.bytes_get)
            if reference is None:
                reference = observed
            assert observed == reference, backend
