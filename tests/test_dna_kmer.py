"""Tests for seed (k-mer) extraction and hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.kmer import (
    Seed,
    canonical_kmer,
    count_kmers,
    djb2_hash,
    extract_kmers,
    extract_seeds,
    kmer_positions,
)
from repro.dna.sequence import reverse_complement

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=120)


class TestDjb2:
    def test_deterministic(self):
        assert djb2_hash("ACGT") == djb2_hash("ACGT")

    def test_different_keys_differ(self):
        assert djb2_hash("ACGT") != djb2_hash("ACGA")

    def test_unsigned_64bit(self):
        value = djb2_hash("ACGT" * 40)
        assert 0 <= value < 2 ** 64

    def test_empty_string(self):
        assert djb2_hash("") == 5381

    def test_balance_over_ranks(self):
        # djb2 should spread distinct seeds roughly evenly over ranks
        # (the property the paper credits for its load balance).
        from repro.dna.sequence import random_dna
        import numpy as np
        seq = random_dna(5000, rng=np.random.default_rng(3))
        kmers = set(extract_kmers(seq, 15))
        n_ranks = 8
        counts = [0] * n_ranks
        for kmer in kmers:
            counts[djb2_hash(kmer) % n_ranks] += 1
        assert max(counts) < 1.3 * (len(kmers) / n_ranks)


class TestCanonical:
    def test_canonical_is_min(self):
        kmer = "TTTA"
        assert canonical_kmer(kmer) == min(kmer, reverse_complement(kmer))

    def test_canonical_idempotent(self):
        assert canonical_kmer(canonical_kmer("GGCA")) == canonical_kmer("GGCA")

    @given(st.text(alphabet="ACGT", min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_canonical_same_for_both_strands(self, kmer):
        assert canonical_kmer(kmer) == canonical_kmer(reverse_complement(kmer))


class TestExtraction:
    def test_count(self):
        seq = "ACGTACGT"
        assert len(list(extract_kmers(seq, 3))) == len(seq) - 3 + 1

    def test_exact_kmers(self):
        assert list(extract_kmers("ACGTA", 4)) == ["ACGT", "CGTA"]

    def test_sequence_shorter_than_k(self):
        assert list(extract_kmers("ACG", 5)) == []

    def test_k_equals_length(self):
        assert list(extract_kmers("ACGT", 4)) == ["ACGT"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(extract_kmers("ACGT", 0))

    def test_positions(self):
        pairs = list(kmer_positions("ACGTA", 3))
        assert pairs == [("ACG", 0), ("CGT", 1), ("GTA", 2)]

    @given(dna_strings, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60)
    def test_kmer_count_property(self, seq, k):
        kmers = list(extract_kmers(seq, k))
        assert len(kmers) == max(0, len(seq) - k + 1)
        assert all(len(kmer) == k for kmer in kmers)

    @given(dna_strings, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40)
    def test_positions_consistent_property(self, seq, k):
        for kmer, offset in kmer_positions(seq, k):
            assert seq[offset:offset + k] == kmer


class TestSeeds:
    def test_extract_seeds_records(self):
        seeds = extract_seeds(7, "ACGTA", 3)
        assert seeds == [Seed("ACG", 7, 0), Seed("CGT", 7, 1), Seed("GTA", 7, 2)]

    def test_extract_seeds_empty(self):
        assert extract_seeds(0, "AC", 3) == []


class TestCountKmers:
    def test_counts_across_sequences(self):
        counts = count_kmers(["ACGT", "ACGA"], 3)
        assert counts["ACG"] == 2
        assert counts["CGT"] == 1
        assert counts["CGA"] == 1

    def test_total_count(self):
        seqs = ["ACGTACG", "TTTT"]
        counts = count_kmers(seqs, 3)
        assert sum(counts.values()) == sum(max(0, len(s) - 2) for s in seqs)
