"""Tests for the shared heap, shared arrays and global pointers."""

import pytest

from repro.pgas.gptr import GlobalPointer
from repro.pgas.shared import SharedArray, SharedHeap


class TestGlobalPointer:
    def test_fields(self):
        ptr = GlobalPointer(owner=2, segment="targets", key=7, nbytes=100)
        assert ptr.owner == 2 and ptr.segment == "targets"
        assert ptr.key == 7 and ptr.nbytes == 100

    def test_with_size(self):
        ptr = GlobalPointer(owner=0, segment="s", key="k")
        resized = ptr.with_size(64)
        assert resized.nbytes == 64
        assert ptr.nbytes == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            GlobalPointer(owner=-1, segment="s", key="k")
        with pytest.raises(ValueError):
            GlobalPointer(owner=0, segment="s", key="k", nbytes=-1)

    def test_hashable(self):
        a = GlobalPointer(owner=0, segment="s", key=1)
        b = GlobalPointer(owner=0, segment="s", key=1)
        assert a == b
        assert len({a, b}) == 1


class TestSharedArray:
    def test_basic(self):
        array = SharedArray(4)
        assert len(array) == 4
        assert array[0] == 0
        array[2] = 9
        assert array[2] == 9

    def test_fill_and_dtype(self):
        array = SharedArray(3, dtype="float64", fill=1.5)
        assert array[1] == pytest.approx(1.5)

    def test_nbytes(self):
        assert SharedArray(8, dtype="int64").nbytes == 64

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            SharedArray(-1)


class TestSharedHeap:
    def test_alloc_and_segment(self):
        heap = SharedHeap(2)
        obj = heap.alloc(0, "seg", {"a": 1})
        assert heap.segment(0, "seg") is obj
        assert heap.has_segment(0, "seg")
        assert not heap.has_segment(1, "seg")

    def test_double_alloc_raises(self):
        heap = SharedHeap(1)
        heap.alloc(0, "seg", {})
        with pytest.raises(KeyError):
            heap.alloc(0, "seg", {})

    def test_alloc_all(self):
        heap = SharedHeap(3)
        objs = heap.alloc_all("seg", lambda rank: [rank])
        assert objs == [[0], [1], [2]]
        assert heap.segments_named("seg") == [[0], [1], [2]]

    def test_missing_segment_raises(self):
        heap = SharedHeap(1)
        with pytest.raises(KeyError):
            heap.segment(0, "nope")

    def test_rank_out_of_range(self):
        heap = SharedHeap(2)
        with pytest.raises(IndexError):
            heap.segment(5, "seg")

    def test_read_write_through_pointer(self):
        heap = SharedHeap(2)
        heap.alloc(1, "kv", {})
        ptr = GlobalPointer(owner=1, segment="kv", key="x")
        heap.write(ptr, 42)
        assert heap.read(ptr) == 42

    def test_free_and_realloc(self):
        heap = SharedHeap(1)
        heap.alloc(0, "seg", {"v": 1})
        heap.free(0, "seg")
        assert not heap.has_segment(0, "seg")
        heap.alloc(0, "seg", {"v": 2})
        assert heap.segment(0, "seg")["v"] == 2

    def test_keys_of_non_dict_segment_raises(self):
        heap = SharedHeap(1)
        heap.alloc(0, "arr", SharedArray(4))
        with pytest.raises(TypeError):
            heap.keys(0, "arr")

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            SharedHeap(0)
