"""Tests for the SeqDB-like binary read container."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.synthetic import ReadRecord
from repro.io.fastq import FastqRecord, write_fastq
from repro.io.seqdb import SeqDbReader, SeqDbWriter, fastq_to_seqdb, records_to_seqdb


def make_reads(n, length=40):
    return [ReadRecord(name=f"read{i}", sequence="ACGT" * (length // 4),
                       quality="I" * length) for i in range(n)]


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        reads = make_reads(10)
        path = tmp_path / "reads.seqdb"
        stats = records_to_seqdb(path, reads)
        assert stats.n_records == 10
        with SeqDbReader(path) as reader:
            assert len(reader) == 10
            for i, read in enumerate(reads):
                record = reader.read_record(i)
                assert record.name == read.name
                assert record.sequence == read.sequence
                assert record.quality == read.quality

    def test_without_quality(self, tmp_path):
        path = tmp_path / "noq.seqdb"
        records_to_seqdb(path, make_reads(3), store_quality=False)
        with SeqDbReader(path) as reader:
            assert not reader.has_quality
            record = reader.read_record(0)
            assert record.quality == "I" * len(record.sequence)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.seqdb"
        records_to_seqdb(path, [])
        with SeqDbReader(path) as reader:
            assert len(reader) == 0
            assert reader.read_range(0, 0) == []

    def test_writer_context_manager_and_double_close(self, tmp_path):
        path = tmp_path / "w.seqdb"
        with SeqDbWriter(path) as writer:
            writer.add("r", "ACGT", "IIII")
            stats = writer.close()
            assert writer.close().n_records == stats.n_records  # idempotent

    def test_add_after_close_raises(self, tmp_path):
        writer = SeqDbWriter(tmp_path / "x.seqdb")
        writer.close()
        with pytest.raises(RuntimeError):
            writer.add("r", "ACGT")

    def test_quality_length_mismatch_raises(self, tmp_path):
        with SeqDbWriter(tmp_path / "y.seqdb") as writer:
            with pytest.raises(ValueError):
                writer.add("r", "ACGT", "II")

    @given(st.lists(st.tuples(st.text(alphabet="abcdef0123", min_size=1, max_size=12),
                              st.text(alphabet="ACGT", min_size=0, max_size=90)),
                    max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, tmp_path_factory, items):
        path = tmp_path_factory.mktemp("seqdb") / "p.seqdb"
        with SeqDbWriter(path) as writer:
            for i, (name, seq) in enumerate(items):
                writer.add(f"{name}{i}", seq)
        with SeqDbReader(path) as reader:
            assert len(reader) == len(items)
            for i, (name, seq) in enumerate(items):
                record = reader.read_record(i)
                assert record.name == f"{name}{i}"
                assert record.sequence == seq


class TestRangesAndPartitions:
    def test_read_range(self, tmp_path):
        path = tmp_path / "r.seqdb"
        records_to_seqdb(path, make_reads(20))
        with SeqDbReader(path) as reader:
            middle = reader.read_range(5, 7)
            assert [r.name for r in middle] == [f"read{i}" for i in range(5, 12)]

    def test_read_range_bounds(self, tmp_path):
        path = tmp_path / "r2.seqdb"
        records_to_seqdb(path, make_reads(5))
        with SeqDbReader(path) as reader:
            with pytest.raises(IndexError):
                reader.read_range(3, 5)
            with pytest.raises(ValueError):
                reader.read_range(0, -1)
            with pytest.raises(IndexError):
                reader.read_record(99)

    def test_partitions_cover_all_records_disjointly(self, tmp_path):
        path = tmp_path / "p.seqdb"
        records_to_seqdb(path, make_reads(23))
        with SeqDbReader(path) as reader:
            names = []
            for rank in range(4):
                names.extend(r.name for r in reader.read_partition(rank, 4))
            assert names == [f"read{i}" for i in range(23)]

    def test_partition_nbytes_positive(self, tmp_path):
        path = tmp_path / "b.seqdb"
        records_to_seqdb(path, make_reads(8))
        with SeqDbReader(path) as reader:
            total = sum(reader.partition_nbytes(rank, 2) for rank in range(2))
            assert total == sum(reader.record_nbytes(i) for i in range(8))


class TestCompressionAndConversion:
    def test_smaller_than_fastq(self, tmp_path):
        reads = make_reads(200, length=100)
        fastq_path = tmp_path / "reads.fastq"
        write_fastq(fastq_path, reads)
        seqdb_path = tmp_path / "reads.seqdb"
        stats = fastq_to_seqdb(fastq_path, seqdb_path)
        fastq_bytes = fastq_path.stat().st_size
        # The paper reports SeqDB files are 40-50% smaller than FASTQ.
        assert stats.file_bytes < 0.75 * fastq_bytes
        assert stats.sequence_bases == 200 * 100

    def test_conversion_is_lossless(self, tmp_path):
        reads = [FastqRecord("a", "ACGTAC", "IIHHII"), FastqRecord("b", "GG", "##")]
        fastq_path = tmp_path / "x.fastq"
        write_fastq(fastq_path, reads)
        seqdb_path = tmp_path / "x.seqdb"
        fastq_to_seqdb(fastq_path, seqdb_path)
        with SeqDbReader(seqdb_path) as reader:
            assert reader.read_range(0, 2) == reads


class TestFailureInjection:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.seqdb"
        path.write_bytes(b"SQ")
        with pytest.raises(ValueError, match="truncated"):
            SeqDbReader(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad2.seqdb"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError, match="magic"):
            SeqDbReader(path)

    def test_truncated_index(self, tmp_path):
        path = tmp_path / "bad3.seqdb"
        records_to_seqdb(path, make_reads(4))
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # chop off part of the index
        with pytest.raises(ValueError, match="index"):
            SeqDbReader(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad4.seqdb"
        records_to_seqdb(path, make_reads(1))
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, 99)  # overwrite the version field
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            SeqDbReader(path)
