"""Byte-identity of the single unit-based query engine and bulk mate rescue.

``PlanRunner.query_program`` drives every plan through ONE windowed unit
loop: bulk mode batches ``lookup_batch_size`` units per window, fine-grained
mode is the same loop with windows of one unit.  On top of it,
``MateRescue`` is a true bulk stage under ``use_bulk_lookups``: one
deduplicated ``fetch_many`` per window for the anchor fragments the
window's per-read stages did not already pool, then one sweep of the
shape-grouped batched striped kernel.  Three contracts are pinned here:

* **Engine byte identity** -- all four registered workloads produce
  identical output across the three execution backends x bulk on/off,
  offline and served, against the cooperative fine-grained reference.
* **Bulk-vs-scalar mate rescue** -- on the rescue edge cases (both mates
  missing, a rescue window clipped at the contig boundary, an insert-size
  outlier, rescue disabled, two rescues sharing one anchor fragment) the
  bulk path reports byte-identical SAM and identical counters.
* **Anchor-fetch dedup** -- rescue anchors fetched by ExactPath/ExtendAlign
  earlier in the same window are NOT fetched again: under bulk, turning
  rescue on adds zero off-node gets, while the scalar engine pays one
  charged fetch per attempt.
"""

import numpy as np
import pytest

from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.core.plan import PlanRunner, plan_for_workload
from repro.dna.sequence import random_dna, reverse_complement
from repro.dna.synthetic import (GenomeSpec, ReadRecord, ReadSetSpec,
                                 make_dataset)
from repro.io.sam import paired_sam_text, sam_text
from repro.pgas.cost_model import EDISON_LIKE

BACKENDS = ("cooperative", "threaded", "process")
WORKLOADS = ("align", "count", "screen", "paired")
MACHINE = EDISON_LIKE.with_cores_per_node(2)
N_READS = 48  # 24 pairs: several bulk windows per rank at window 8


def read(name: str, sequence: str) -> ReadRecord:
    return ReadRecord(name=name, sequence=sequence,
                      quality="I" * len(sequence))


@pytest.fixture(scope="module")
def engine_dataset():
    """A paired library; the per-read workloads just see 48 single reads."""
    spec = GenomeSpec(name="uni", genome_length=10000, n_contigs=5,
                      repeat_fraction=0.02, repeat_unit_length=150,
                      min_contig_length=300)
    read_spec = ReadSetSpec(coverage=3.0, read_length=70, error_rate=0.01,
                            paired=True, insert_size=240, insert_sd=20)
    genome, reads = make_dataset(spec, read_spec, seed=23)
    return genome, reads[:N_READS]


@pytest.fixture(scope="module")
def engine_config():
    return AlignerConfig(seed_length=21, fragment_length=500, seed_stride=2)


def render(workload, output, genome):
    names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
    lengths = [len(c) for c in genome.contigs]
    if workload == "align":
        return sam_text(output, names, lengths)
    if workload == "paired":
        return paired_sam_text(output, names, lengths)
    if workload == "count":
        return output.to_tsv()
    return output.to_tsv(names)


def run_offline(workload, dataset, config, backend, bulk):
    genome, reads = dataset
    cfg = config.with_(use_bulk_lookups=bulk, lookup_batch_size=8)
    result = PlanRunner(plan_for_workload(workload), cfg).run(
        genome.contigs, reads, n_ranks=4, machine=MACHINE, backend=backend)
    return render(workload, result.output, genome)


class TestUnifiedEngineByteIdentity:
    """The tentpole invariant: one engine, zero output drift."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_offline_matrix_agrees(self, engine_dataset, engine_config,
                                   workload):
        texts = {(backend, bulk): run_offline(workload, engine_dataset,
                                              engine_config, backend, bulk)
                 for backend in BACKENDS for bulk in (False, True)}
        reference = texts[("cooperative", False)]
        assert reference.strip()
        for key, text in texts.items():
            assert text == reference, (workload, key)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("bulk", (False, True))
    def test_served_matches_offline(self, engine_dataset, engine_config,
                                    backend, bulk):
        genome, reads = engine_dataset
        names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
        cfg = engine_config.with_(use_bulk_lookups=bulk, lookup_batch_size=8)
        with MerAligner(cfg).prepare(genome.contigs, n_ranks=4,
                                     machine=MACHINE, backend=backend,
                                     target_names=names) as session:
            for workload in WORKLOADS:
                offline = run_offline(workload, engine_dataset, engine_config,
                                      backend, bulk)
                outcome = session.run_plan_many(workload, [reads])
                served = session.render(workload,
                                        outcome.per_request_outputs[0])
                assert served == offline, (workload, backend, bulk)


class TestBulkMateRescueEquivalence:
    """Bulk rescue (fetch_many + extend_batch) vs the scalar path."""

    K = 21
    L = 70
    INSERT = 240

    @pytest.fixture(scope="class")
    def contig(self):
        rng = np.random.default_rng(99)
        return random_dna(3000, rng=rng)

    def config(self, bulk, **kwargs):
        base = dict(seed_length=self.K, fragment_length=1000,
                    insert_size=self.INSERT, insert_slack=60,
                    use_seed_index_cache=False, use_target_cache=False,
                    use_bulk_lookups=bulk, lookup_batch_size=64)
        base.update(kwargs)
        return AlignerConfig(**base)

    @staticmethod
    def corrupt_every(sequence: str, stride: int) -> str:
        """Substitute every *stride*-th base: no clean k=21 seed survives,
        but banded SW still scores far above the threshold."""
        flip = {"A": "C", "C": "G", "G": "T", "T": "A"}
        out = list(sequence)
        for i in range(0, len(sequence), stride):
            out[i] = flip[out[i]]
        return "".join(out)

    def pair(self, contig, name, start, mutate_mate=False, insert=None):
        insert = insert or self.INSERT
        r1_seq = contig[start:start + self.L]
        r2_start = start + insert - self.L
        r2_seq = reverse_complement(contig[r2_start:r2_start + self.L])
        if mutate_mate:
            r2_seq = self.corrupt_every(r2_seq, 10)
        return [read(f"{name}/1", r1_seq), read(f"{name}/2", r2_seq)]

    @pytest.fixture(scope="class")
    def edge_case_library(self, contig):
        """Every rescue edge case in one read set (one bulk window)."""
        rng = np.random.default_rng(123)
        reads = []
        # Two rescuable pairs anchored on the SAME fragment: the bulk path
        # must dedupe their anchor pointer (and in practice reuse the
        # window pool) without changing either rescue.
        reads += self.pair(contig, "resc1", 400, mutate_mate=True)
        reads += self.pair(contig, "resc2", 430, mutate_mate=True)
        # Both mates foreign: nothing to anchor on, no attempt.
        foreign = random_dna(600, rng=rng)
        reads += [read("miss/1", foreign[:self.L]),
                  read("miss/2",
                       reverse_complement(foreign[200:200 + self.L]))]
        # Anchor near the contig end: the rescue window clips at the
        # boundary instead of crashing.
        start = len(contig) - self.INSERT + 30
        beyond = contig[start + self.INSERT - self.L:]
        clipped = self.corrupt_every(reverse_complement(
            (beyond + "ACGT" * self.L)[:self.L]), 10)
        reads += [read("clip/1", contig[start:start + self.L]),
                  read("clip/2", clipped)]
        # Insert-size outlier: the mate's true locus lies ~1200 bases
        # beyond the expected window; rescue must not invent an alignment.
        reads += self.pair(contig, "outl", 400, mutate_mate=True,
                           insert=1600)
        return reads

    def run(self, contig, reads, bulk, **kwargs):
        return PlanRunner(plan_for_workload("paired"),
                          self.config(bulk, **kwargs)).run(
            [contig], reads, n_ranks=4, machine=MACHINE,
            backend="cooperative")

    def test_edge_cases_byte_identical(self, contig, edge_case_library):
        scalar = self.run(contig, edge_case_library, bulk=False)
        bulk = self.run(contig, edge_case_library, bulk=True)
        assert paired_sam_text(bulk.output, ["c0"], [len(contig)]) == \
            paired_sam_text(scalar.output, ["c0"], [len(contig)])
        cs, cb = scalar.report.counters, bulk.report.counters
        # The library exercises real rescues, real refusals and a no-anchor
        # pair -- and the bulk path agrees on every counter.
        assert cs.mate_rescue_attempts == 4
        assert cs.mate_rescues >= 2
        assert (cs.mate_rescue_attempts, cs.mate_rescues, cs.sw_calls,
                cs.sw_cells, cs.pairs_processed) == \
            (cb.mate_rescue_attempts, cb.mate_rescues, cb.sw_calls,
             cb.sw_cells, cb.pairs_processed)
        # The outlier stayed unrescued, in both engines.
        outlier = [r for r in bulk.output if r.name1.startswith("outl")]
        assert outlier and outlier[0].rescued == 0

    def test_rescue_disabled_byte_identical(self, contig, edge_case_library):
        scalar = self.run(contig, edge_case_library, bulk=False,
                          use_mate_rescue=False)
        bulk = self.run(contig, edge_case_library, bulk=True,
                        use_mate_rescue=False)
        assert paired_sam_text(bulk.output, ["c0"], [len(contig)]) == \
            paired_sam_text(scalar.output, ["c0"], [len(contig)])
        assert bulk.report.counters.mate_rescue_attempts == 0
        assert scalar.report.counters.mate_rescue_attempts == 0

    @pytest.mark.parametrize("window", (1, 2, 64))
    def test_window_size_does_not_change_rescues(self, contig,
                                                 edge_case_library, window):
        reference = self.run(contig, edge_case_library, bulk=False)
        bulk = self.run(contig, edge_case_library, bulk=True,
                        lookup_batch_size=window)
        assert paired_sam_text(bulk.output, ["c0"], [len(contig)]) == \
            paired_sam_text(reference.output, ["c0"], [len(contig)])


class TestRescueAnchorDedup:
    """The pinned comm-counter contract of the anchor-fetch dedup."""

    def corrupted_library(self, dataset, stride=3):
        """The module dataset with every *stride*-th pair's R2 corrupted so
        its seeds all miss: a steady supply of rescuable pairs."""
        flip = {"A": "C", "C": "G", "G": "T", "T": "A"}
        genome, reads = dataset
        out = list(reads)
        for i in range(0, len(out), 2 * stride):
            mate = out[i + 1]
            seq = list(mate.sequence)
            for j in range(0, len(seq), 10):
                seq[j] = flip[seq[j]]
            out[i + 1] = ReadRecord(name=mate.name, sequence="".join(seq),
                                    quality=mate.quality,
                                    mate_of=mate.mate_of)
        return genome, out

    def run(self, dataset, config, bulk, rescue):
        genome, reads = dataset
        cfg = config.with_(use_bulk_lookups=bulk, lookup_batch_size=8,
                           use_mate_rescue=rescue,
                           use_seed_index_cache=False,
                           use_target_cache=False)
        return PlanRunner(plan_for_workload("paired"), cfg).run(
            genome.contigs, reads, n_ranks=8, machine=MACHINE,
            backend="cooperative")

    def test_bulk_rescue_pays_no_extra_gets(self, engine_dataset,
                                            engine_config):
        dataset = self.corrupted_library(engine_dataset)
        bulk_on = self.run(dataset, engine_config, bulk=True, rescue=True)
        bulk_off = self.run(dataset, engine_config, bulk=True, rescue=False)
        counters = bulk_on.report.counters
        assert counters.mate_rescue_attempts > 0
        assert counters.mate_rescues > 0
        # Every rescue anchor was fetched by ExactPath/ExtendAlign earlier
        # in the same window and reused from the window pool: turning
        # rescue on must not add a single one-sided get.
        on_stats = bulk_on.report.total_stats
        off_stats = bulk_off.report.total_stats
        assert on_stats.gets == off_stats.gets
        assert on_stats.off_node_ops == off_stats.off_node_ops

    def test_scalar_rescue_pays_per_attempt(self, engine_dataset,
                                            engine_config):
        dataset = self.corrupted_library(engine_dataset)
        fine_on = self.run(dataset, engine_config, bulk=False, rescue=True)
        fine_off = self.run(dataset, engine_config, bulk=False, rescue=False)
        attempts = fine_on.report.counters.mate_rescue_attempts
        assert attempts > 0
        # The scalar path re-fetches the anchor per attempt: one charged
        # get each (off-node for remotely owned fragments).
        extra_gets = fine_on.report.total_stats.gets - \
            fine_off.report.total_stats.gets
        assert extra_gets == attempts
        assert fine_on.report.total_stats.off_node_ops > \
            fine_off.report.total_stats.off_node_ops

    def test_bulk_rescue_drops_off_node_gets_vs_scalar(self, engine_dataset,
                                                       engine_config):
        """The satellite acceptance: with rescue on, the bulk engine's
        off-node get count drops below the scalar engine's -- the rescue
        anchors ride the window's existing aggregated fetches."""
        dataset = self.corrupted_library(engine_dataset)
        fine = self.run(dataset, engine_config, bulk=False, rescue=True)
        bulk = self.run(dataset, engine_config, bulk=True, rescue=True)
        assert bulk.report.counters.mate_rescues == \
            fine.report.counters.mate_rescues
        assert bulk.report.total_stats.off_node_ops < \
            fine.report.total_stats.off_node_ops
