"""Batched vs fine-grained equivalence of the bulk-communication engine.

The batched aligning engine (``use_bulk_lookups=True``) must be a pure
*transport* optimization: byte-identical alignments, identical per-node cache
behaviour, identical Smith-Waterman work -- only the message pattern (and the
modelled communication time) may change.  These tests pin that contract
across the optimization matrix, plus the kernel-level equivalences the engine
relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.extend import SeedHit, extend_batch, extend_seed_hit
from repro.alignment.striped import striped_smith_waterman, striped_smith_waterman_batch
from repro.core.pipeline import MerAligner
from repro.dna.sequence import random_dna
from repro.pgas.cost_model import EDISON_LIKE

MACHINE = EDISON_LIKE.with_cores_per_node(2)


def alignment_key(alignment):
    """Every reported field of an alignment, for byte-identity comparison."""
    return (alignment.query_name, alignment.target_id, alignment.score,
            alignment.query_start, alignment.query_end,
            alignment.target_start, alignment.target_end, alignment.strand,
            alignment.is_exact, tuple(map(tuple, alignment.cigar or ())),
            alignment.identity)


def run_pair(dataset, config, n_ranks=8, batch_size=16, n_reads=160):
    """Run the fine-grained and batched engines on the same inputs."""
    genome, reads = dataset
    reads = reads[:n_reads]
    fine = MerAligner(config).run(genome.contigs, reads, n_ranks=n_ranks,
                                  machine=MACHINE)
    batched = MerAligner(config.with_(use_bulk_lookups=True,
                                      lookup_batch_size=batch_size)).run(
        genome.contigs, reads, n_ranks=n_ranks, machine=MACHINE)
    return fine, batched


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("aggregating", [True, False])
    @pytest.mark.parametrize("cached", [True, False])
    def test_alignments_byte_identical_and_caches_agree(self, small_dataset,
                                                        small_config,
                                                        aggregating, cached):
        """The satellite property: across aggregating-stores on/off and cache
        on/off, batched and fine-grained paths report byte-identical
        alignments and identical cache hit/miss totals.

        The exact-match fast path is disabled here because its fine-grained
        form short-circuits lookups per read (the batched engine necessarily
        looks up both orientations up front), which perturbs cache traffic
        while leaving the alignments themselves identical -- that case is
        covered separately below.
        """
        config = small_config.with_(use_exact_match_optimization=False,
                                    use_aggregating_stores=aggregating,
                                    use_seed_index_cache=cached,
                                    use_target_cache=cached)
        fine, batched = run_pair(small_dataset, config)
        assert [alignment_key(a) for a in fine.alignments] == \
            [alignment_key(a) for a in batched.alignments]
        counters_f, counters_b = fine.counters, batched.counters
        assert counters_f.reads_aligned == counters_b.reads_aligned
        assert counters_f.seed_lookups == counters_b.seed_lookups
        assert counters_f.seed_lookup_hits == counters_b.seed_lookup_hits
        assert counters_f.sw_calls == counters_b.sw_calls
        assert counters_f.sw_cells == counters_b.sw_cells
        assert counters_f.candidates_examined == counters_b.candidates_examined
        if cached:
            for name in ("seed_index", "target"):
                stats_f = fine.cache_stats[name]
                stats_b = batched.cache_stats[name]
                assert (stats_f.hits, stats_f.misses, stats_f.insertions,
                        stats_f.evictions) == \
                    (stats_b.hits, stats_b.misses, stats_b.insertions,
                     stats_b.evictions), name

    @pytest.mark.parametrize("cached", [True, False])
    def test_alignments_identical_with_exact_fast_path(self, small_dataset,
                                                       small_config, cached):
        config = small_config.with_(use_seed_index_cache=cached,
                                    use_target_cache=cached)
        fine, batched = run_pair(small_dataset, config)
        assert [alignment_key(a) for a in fine.alignments] == \
            [alignment_key(a) for a in batched.alignments]
        assert fine.counters.exact_path_hits == batched.counters.exact_path_hits

    def test_batch_size_does_not_change_alignments(self, small_dataset,
                                                   small_config):
        genome, reads = small_dataset
        reads = reads[:120]
        outputs = []
        for batch_size in (1, 7, 64, 1000):
            config = small_config.with_(use_bulk_lookups=True,
                                        lookup_batch_size=batch_size)
            report = MerAligner(config).run(genome.contigs, reads, n_ranks=4,
                                            machine=MACHINE)
            outputs.append([alignment_key(a) for a in report.alignments])
        assert all(out == outputs[0] for out in outputs[1:])

    def test_bulk_engine_halves_remote_gets_without_caches(self, small_dataset,
                                                           small_config):
        """The headline effect: with caches disabled at 8 ranks the batched
        engine issues at least 2x fewer off-node get operations during the
        aligning phase (in practice far fewer -- one per owner per window)."""
        config = small_config.with_(use_seed_index_cache=False,
                                    use_target_cache=False)
        fine, batched = run_pair(small_dataset, config, n_ranks=8)
        fine_off = fine.total_stats.off_node_ops
        batched_off = batched.total_stats.off_node_ops
        assert batched_off * 2 <= fine_off
        assert batched.total_stats.gets * 2 <= fine.total_stats.gets
        # and the modelled aligning phase gets faster, not slower
        assert batched.alignment_time < fine.alignment_time


class TestKernelEquivalence:
    @given(st.lists(st.tuples(st.integers(1, 30), st.integers(1, 50)),
                    min_size=1, max_size=12),
           st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_batched_striped_kernel_matches_single(self, shapes, seed):
        rng = np.random.default_rng(seed)
        pairs = [(random_dna(n, rng=rng), random_dna(m, rng=rng))
                 for n, m in shapes]
        # Duplicate shapes so the stacked (vectorised) code path is exercised.
        pairs = pairs + pairs
        for locate_start in (False, True):
            batched = striped_smith_waterman_batch(pairs,
                                                   locate_start=locate_start)
            single = [striped_smith_waterman(q, t, locate_start=locate_start)
                      for q, t in pairs]
            assert batched == single

    def test_batch_handles_empty_sequences(self):
        pairs = [("", "ACGT"), ("ACGT", ""), ("ACGT", "ACGT")]
        results = striped_smith_waterman_batch(pairs)
        assert results[0].score == 0 and results[0].cells == 0
        assert results[1].score == 0 and results[1].cells == 0
        assert results[2].score == striped_smith_waterman("ACGT", "ACGT").score

    @pytest.mark.parametrize("detailed", [False, True])
    def test_extend_batch_matches_extend_seed_hit(self, rng, detailed):
        jobs = []
        for index in range(24):
            target = random_dna(220, rng=rng)
            offset = int(rng.integers(0, 150))
            query = (target[offset:offset + 60] if index % 2
                     else random_dna(60, rng=rng))
            hit = SeedHit(target_id=index, target_offset=offset,
                          query_offset=0, seed_length=21)
            jobs.append((f"read{index}", query, target, hit))
        batched = extend_batch(jobs, detailed=detailed)
        single = [extend_seed_hit(*job, detailed=detailed) for job in jobs]
        assert batched == single

    def test_extend_batch_empty(self):
        assert extend_batch([]) == []
