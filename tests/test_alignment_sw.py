"""Tests for scalar and striped (vectorised) Smith-Waterman."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.result import CigarOp
from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme
from repro.alignment.smith_waterman import smith_waterman, sw_score_matrix
from repro.alignment.striped import striped_smith_waterman
from repro.dna.sequence import random_dna

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestScalarSmithWaterman:
    def test_identical_sequences(self):
        seq = "ACGTACGTGG"
        result = smith_waterman(seq, seq)
        assert result.score == DEFAULT_SCORING.max_score(len(seq))
        assert result.query_start == 0 and result.query_end == len(seq)
        assert result.target_start == 0 and result.target_end == len(seq)
        assert result.cigar == [(len(seq), CigarOp.MATCH)]

    def test_substring_match(self):
        result = smith_waterman("CGTA", "AACGTAAA")
        assert result.score == DEFAULT_SCORING.max_score(4)
        assert result.target_start == 2
        assert result.target_end == 6

    def test_no_similarity(self):
        result = smith_waterman("AAAA", "CCCC")
        assert result.score == 0

    def test_empty_inputs(self):
        assert smith_waterman("", "ACGT").score == 0
        assert smith_waterman("ACGT", "").score == 0

    def test_single_mismatch_local(self):
        # Local alignment may clip around the mismatch or absorb it.
        result = smith_waterman("ACGTACGT", "ACGTTCGT")
        assert result.score >= 2 * 4  # at least one exact half

    def test_gap_alignment(self):
        query = "ACGTACGT"
        target = "ACGTGGACGT"  # 2-base insertion in the target
        result = smith_waterman(query, target)
        ops = {op for _, op in result.cigar}
        assert result.score > 0
        # Either it aligns across the gap (deletion op) or clips to one side.
        assert CigarOp.MATCH in ops

    def test_aligned_strings_consistent_with_cigar(self):
        result = smith_waterman("ACGTAACGT", "ACGTTTACGT")
        assert len(result.aligned_query) == len(result.aligned_target)
        cigar_span = sum(length for length, _ in result.cigar)
        assert cigar_span == len(result.aligned_query)

    def test_traceback_false_gives_score_only(self):
        result = smith_waterman("ACGT", "ACGT", traceback=False)
        assert result.score == 8
        assert result.cigar == []

    def test_score_matrix_shape_and_max(self):
        H = sw_score_matrix("ACG", "ACGT")
        assert H.shape == (4, 5)
        assert H.max() == smith_waterman("ACG", "ACGT").score

    @given(dna_nonempty)
    @settings(max_examples=40)
    def test_self_alignment_is_perfect(self, seq):
        result = smith_waterman(seq, seq)
        assert result.score == DEFAULT_SCORING.max_score(len(seq))

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_score_symmetry(self, a, b):
        assert smith_waterman(a, b).score == smith_waterman(b, a).score

    @given(dna, dna)
    @settings(max_examples=40, deadline=None)
    def test_score_nonnegative_and_bounded(self, a, b):
        score = smith_waterman(a, b, traceback=False).score
        assert 0 <= score <= DEFAULT_SCORING.match * min(len(a), len(b))


class TestStripedSmithWaterman:
    def test_matches_scalar_on_examples(self):
        cases = [
            ("ACGTACGT", "ACGTACGT"),
            ("ACGTACGT", "ACGTTCGT"),
            ("CGTA", "AACGTAAA"),
            ("ACGTACGT", "ACGTGGACGT"),
            ("AAAA", "CCCC"),
            ("GATTACA", "GCATGCG"),
        ]
        for query, target in cases:
            scalar = smith_waterman(query, target, traceback=False).score
            striped = striped_smith_waterman(query, target).score
            assert striped == scalar, (query, target)

    def test_empty_inputs(self):
        assert striped_smith_waterman("", "ACGT").score == 0
        assert striped_smith_waterman("ACGT", "").score == 0

    def test_end_positions_identify_match(self):
        result = striped_smith_waterman("CGTA", "AACGTAAA")
        assert result.query_end == 4
        assert result.target_end == 6

    def test_locate_start(self):
        result = striped_smith_waterman("CGTA", "AACGTAAA", locate_start=True)
        assert result.has_start
        assert result.query_start == 0
        assert result.target_start == 2

    def test_cells_counted(self):
        result = striped_smith_waterman("ACGT", "ACGTACGT")
        assert result.cells == 4 * 8

    @given(dna, dna)
    @settings(max_examples=60, deadline=None)
    def test_striped_equals_scalar_property(self, query, target):
        scalar = smith_waterman(query, target, traceback=False).score
        striped = striped_smith_waterman(query, target).score
        assert striped == scalar

    @given(dna_nonempty, dna_nonempty)
    @settings(max_examples=30, deadline=None)
    def test_striped_start_consistent(self, query, target):
        result = striped_smith_waterman(query, target, locate_start=True)
        if result.score > 0 and result.has_start:
            assert 0 <= result.query_start < result.query_end <= len(query)
            assert 0 <= result.target_start < result.target_end <= len(target)

    def test_alternative_scoring(self):
        scheme = ScoringScheme(match=1, mismatch=1, gap_open=3, gap_extend=1)
        query, target = "ACGGTACGT", "ACGTTTACGGT"
        assert (striped_smith_waterman(query, target, scoring=scheme).score
                == smith_waterman(query, target, scoring=scheme, traceback=False).score)

    def test_long_random_sequences_match_scalar(self, rng):
        query = random_dna(60, rng=rng)
        target = random_dna(120, rng=rng)
        assert (striped_smith_waterman(query, target).score
                == smith_waterman(query, target, traceback=False).score)
