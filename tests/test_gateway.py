"""Tests for the multi-tenant gateway (:mod:`repro.gateway`).

Pins, in order:

* the :class:`ResultCache` unit semantics (TTL expiry via an injected
  clock, LRU capacity, counters, disabled pass-through);
* the :class:`AdmissionController` unit semantics (bounded queue with
  explicit ``BUSY`` rejection, per-tenant round-robin fairness, per-index
  in-flight limiting, clean close);
* the :class:`IndexRegistry` budget/LRU/pinning semantics on stub entries;
* the house invariant extended to routing: a request routed to any named
  index, from any tenant, interleaved with other tenants' traffic, is
  byte-identical to an offline single-index run of its own reads -- on
  every backend, bulk batching on and off, cached or uncached, and after
  an eviction + re-register cycle;
* the wire protocol: ``INDICES`` / ``REGISTER`` / ``EVICT``,
  ``INDEX=``/``TENANT=`` query options, ``BUSY`` replies, the gateway
  sections of ``STATS``/``METRICS``;
* the UTF-8 ``ERR`` regression (non-ASCII exception messages reach the
  client intact with the connection still usable) and the client's
  bounded connect retry.
"""

import socket
import threading
import time

import pytest

from repro import api
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.gateway import (AdmissionController, AlignmentGateway,
                           GatewayBusyError, IndexRegistry,
                           RegistryBudgetError, ResidentEntry, ResultCache)
from repro.io.sam import sam_text
from repro.pgas.cost_model import EDISON_LIKE
from repro.service.client import (ServiceBusyError, ServiceError,
                                  SocketAlignmentClient)

BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)


@pytest.fixture(scope="module")
def datasets():
    """Two distinct genomes with reads (seeds 7 and 21)."""
    genome_a, reads_a = make_dataset(
        GenomeSpec(name="refa", genome_length=8000, n_contigs=4),
        ReadSetSpec(coverage=1.0, read_length=70), seed=7)
    genome_b, reads_b = make_dataset(
        GenomeSpec(name="refb", genome_length=8000, n_contigs=4),
        ReadSetSpec(coverage=1.0, read_length=70), seed=21)
    return genome_a, reads_a, genome_b, reads_b


def offline_sam(config, contigs, reads, backend="cooperative"):
    from repro.core.plan import normalize_targets_named
    report = MerAligner(config).run(contigs, reads, n_ranks=4,
                                    machine=MACHINE, backend=backend)
    named = normalize_targets_named(contigs)
    return sam_text(report.alignments, [name for name, _ in named],
                    [len(seq) for _, seq in named])


# -- ResultCache ---------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestResultCache:
    def test_disabled_by_default(self):
        cache = ResultCache()
        assert not cache.enabled
        cache.put("k", "v")
        assert cache.get("k") is None
        # A disabled cache records nothing, not even misses.
        assert cache.stats_dict()["misses"] == 0
        assert cache.occupancy == 0

    def test_hit_then_ttl_expiry(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_s=10.0, clock=clock)
        key = ResultCache.request_key("default", "align", "fp", b"payload")
        assert cache.get(key) is None
        cache.put(key, "SAM")
        clock.now = 9.9
        assert cache.get(key) == "SAM"
        clock.now = 10.1
        assert cache.get(key) is None
        stats = cache.stats_dict()
        assert (stats["hits"], stats["misses"]) == (1, 2)
        assert stats["expirations"] == 1
        assert stats["evictions"] == 0

    def test_lru_capacity_eviction(self):
        clock = _FakeClock()
        cache = ResultCache(ttl_s=100.0, max_entries=2, clock=clock)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"       # refresh a: b is now LRU
        cache.put("c", "3")
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"
        assert cache.stats_dict()["evictions"] == 1

    def test_key_distinguishes_every_component(self):
        base = ("default", "align", "fp", b"reads")
        key = ResultCache.request_key(*base)
        for variant in (("other", "align", "fp", b"reads"),
                        ("default", "count", "fp", b"reads"),
                        ("default", "align", "fp2", b"reads"),
                        ("default", "align", "fp", b"reads2")):
            assert ResultCache.request_key(*variant) != key

    def test_counters_mirrored_to_registry(self):
        from repro.obs.registry import MetricsRegistry
        registry = MetricsRegistry()
        clock = _FakeClock()
        cache = ResultCache(ttl_s=5.0, metrics=registry, clock=clock)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        counters = registry.snapshot()["counters"]
        assert counters["gateway_cache_stores_total"] == 1
        assert counters["gateway_cache_hits_total"] == 1
        assert counters["gateway_cache_misses_total"] == 1
        assert registry.snapshot()["gauges"]["gateway_cache_occupancy"] == 1


# -- AdmissionController -------------------------------------------------------

class _FakeFuture:
    def __init__(self, value="done"):
        self.value = value

    def result(self, timeout=None):
        return self.value


class TestAdmissionController:
    def test_unbounded_default_dispatches_fifo(self):
        admission = AdmissionController()
        try:
            got = [admission.admit("t", "idx", lambda i=i: _FakeFuture(i))
                   for i in range(4)]
            assert [p.result(timeout=5.0) for p in got] == [0, 1, 2, 3]
            for _ in got:
                admission.complete("idx")
            assert admission.stats_dict()["pending"] == 0
        finally:
            admission.close()

    def test_max_pending_zero_rejects_everything(self):
        admission = AdmissionController(max_pending=0)
        try:
            with pytest.raises(GatewayBusyError):
                admission.admit("t", "idx", _FakeFuture)
            assert admission.rejected == 1
        finally:
            admission.close()

    def test_bounded_queue_rejects_then_recovers(self):
        admission = AdmissionController(max_pending=2,
                                        default_inflight_limit=1)
        try:
            first = admission.admit("t", "idx", _FakeFuture)
            second = admission.admit("t", "idx", _FakeFuture)
            with pytest.raises(GatewayBusyError):
                admission.admit("t", "idx", _FakeFuture)
            first.result(timeout=5.0)
            admission.complete("idx")
            third = admission.admit("t", "idx", _FakeFuture)
            second.result(timeout=5.0)
            admission.complete("idx")
            third.result(timeout=5.0)
            admission.complete("idx")
        finally:
            admission.close()

    def test_round_robin_interleaves_tenants(self):
        """With one in-flight slot, a saturating dummy, then 3 'a' and 2 'b'
        requests, dispatch order must alternate a/b, not drain 'a' first."""
        admission = AdmissionController(default_inflight_limit=1)
        order = []
        try:
            dummy = admission.admit("a", "idx",
                                    lambda: _FakeFuture("dummy"))
            dummy.result(timeout=5.0)   # dispatched; holds the slot
            pendings = []
            for tenant, tag in (("a", "a1"), ("a", "a2"), ("a", "a3"),
                                ("b", "b1"), ("b", "b2")):
                def submit(t=tag):
                    order.append(t)
                    return _FakeFuture(t)
                pendings.append((tag, admission.admit(tenant, "idx", submit)))
            admission.complete("idx")   # releases the dummy's slot
            # With one slot, each dispatch waits on the previous complete(),
            # so results must be awaited in round-robin (dispatch) order.
            by_tag = dict(pendings)
            for tag in ("a1", "b1", "a2", "b2", "a3"):
                assert by_tag[tag].result(timeout=5.0) == tag
                admission.complete("idx")
            assert order == ["a1", "b1", "a2", "b2", "a3"]
        finally:
            admission.close()

    def test_inflight_limit_defers_dispatch(self):
        admission = AdmissionController(default_inflight_limit=1)
        try:
            first = admission.admit("t", "idx", _FakeFuture)
            first.result(timeout=5.0)
            second = admission.admit("t", "idx", _FakeFuture)
            time.sleep(0.05)
            assert admission.stats_dict()["queued"] == 1
            admission.complete("idx")
            second.result(timeout=5.0)
            admission.complete("idx")
        finally:
            admission.close()

    def test_close_fails_queued_requests(self):
        admission = AdmissionController(default_inflight_limit=1)
        first = admission.admit("t", "idx", _FakeFuture)
        first.result(timeout=5.0)
        stuck = admission.admit("t", "idx", _FakeFuture)
        admission.close()
        with pytest.raises(RuntimeError, match="closed"):
            stuck.result(timeout=5.0)


# -- IndexRegistry -------------------------------------------------------------

class _StubCloseable:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def _stub_entry(name, heap_bytes, pinned=False):
    return ResidentEntry(name=name, session=_StubCloseable(),
                         scheduler=_StubCloseable(), heap_bytes=heap_bytes,
                         fingerprint="fp", pinned=pinned)


class TestIndexRegistry:
    def test_budget_evicts_least_recently_used(self):
        registry = IndexRegistry(budget_bytes=250)
        registry.add(_stub_entry("a", 100))
        registry.add(_stub_entry("b", 100))
        registry.touch("a")              # b becomes the LRU victim
        evicted_entry = registry.get("b")
        assert registry.add(_stub_entry("c", 100)) == ["b"]
        assert registry.names() == ["a", "c"]
        assert evicted_entry.scheduler.closed
        assert evicted_entry.session.closed
        assert registry.evictions == 1

    def test_pinned_entries_never_auto_evicted(self):
        registry = IndexRegistry(budget_bytes=250)
        registry.add(_stub_entry("default", 100, pinned=True))
        registry.add(_stub_entry("a", 100))
        registry.touch("default")
        registry.touch("a")
        # Fitting 200 more can only evict "a"; "default" is pinned even
        # though it would otherwise also be needed.
        with pytest.raises(RegistryBudgetError):
            registry.add(_stub_entry("big", 200))
        assert "default" in registry

    def test_oversized_entry_rejected_outright(self):
        registry = IndexRegistry(budget_bytes=100)
        with pytest.raises(RegistryBudgetError):
            registry.add(_stub_entry("huge", 101))

    def test_explicit_evict_refuses_pinned(self):
        registry = IndexRegistry()
        registry.add(_stub_entry("default", 10, pinned=True))
        registry.add(_stub_entry("a", 10))
        with pytest.raises(ValueError, match="pinned"):
            registry.evict("default")
        registry.evict("a")
        assert registry.names() == ["default"]
        with pytest.raises(KeyError):
            registry.get("a")

    def test_duplicate_names_rejected(self):
        registry = IndexRegistry()
        registry.add(_stub_entry("a", 10))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(_stub_entry("a", 10))


# -- routed byte-identity (the house invariant, one layer up) ------------------

class TestRoutingEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("use_bulk", (False, True),
                             ids=("per-read", "bulk"))
    def test_interleaved_tenants_match_offline(self, backend, use_bulk,
                                               datasets, small_config):
        """Two resident indices, two tenants interleaved, plus a cache hit,
        an eviction and a re-register -- every response byte-identical to
        the offline single-index run of its own reads."""
        config = small_config.with_(use_bulk_lookups=use_bulk,
                                    lookup_batch_size=16)
        genome_a, reads_a, genome_b, reads_b = datasets
        expect_a = offline_sam(config, genome_a.contigs, reads_a[:8],
                               backend=backend)
        expect_b = offline_sam(config, genome_b.contigs, reads_b[:8],
                               backend=backend)
        session = MerAligner(config).prepare(genome_a.contigs, n_ranks=4,
                                             machine=MACHINE, backend=backend)
        gateway = AlignmentGateway(session, cache_ttl_s=300.0)
        try:
            gateway.register("refb", genome_b.contigs)
            # Interleave the tenants' traffic across both indices.
            responses = []
            for _ in range(2):
                responses.append(gateway.request(reads_a[:8], tenant="alice"))
                responses.append(gateway.request(reads_b[:8], index="refb",
                                                 tenant="bob"))
            for response in responses:
                expected = expect_a if response.index == "default" else expect_b
                assert response.text == expected
            # The second round was exact-duplicate traffic: served from the
            # cache, still byte-identical.
            assert [r.cached for r in responses] == [False, False, True, True]
            assert gateway.cache.hits == 2

            # Evict, re-register, and serve again: identical bytes.  The
            # re-registered index has a fresh session but the same
            # fingerprint, so the earlier cache entry legitimately hits.
            gateway.evict("refb")
            with pytest.raises(KeyError):
                gateway.request(reads_b[:2], index="refb")
            gateway.register("refb", genome_b.contigs)
            again = gateway.request(reads_b[:8], index="refb", tenant="bob")
            assert again.text == expect_b
        finally:
            gateway.close()

    def test_count_and_screen_route_to_named_index(self, datasets,
                                                   small_config):
        genome_a, reads_a, genome_b, reads_b = datasets
        session = MerAligner(small_config).prepare(
            genome_a.contigs, n_ranks=4, machine=MACHINE,
            backend="cooperative")
        gateway = AlignmentGateway(session)
        try:
            gateway.register("refb", genome_b.contigs)
            for workload in ("count", "screen"):
                routed = gateway.request(reads_b[:8], workload=workload,
                                         index="refb", tenant="carol").text
                offline = MerAligner(small_config).prepare(
                    genome_b.contigs, n_ranks=4, machine=MACHINE,
                    backend="cooperative")
                try:
                    output = (offline.count(reads_b[:8])
                              if workload == "count"
                              else offline.screen(reads_b[:8]))
                    expected = offline.render(workload, output)
                finally:
                    offline.close()
                assert routed == expected
        finally:
            gateway.close()

    def test_pass_through_default_matches_plain_scheduler(self, datasets,
                                                          small_config):
        """A defaults-only gateway adds nothing observable: same bytes as
        the direct scheduler path for the same reads."""
        genome_a, reads_a, _genome_b, _reads_b = datasets
        session = MerAligner(small_config).prepare(
            genome_a.contigs, n_ranks=4, machine=MACHINE,
            backend="cooperative")
        gateway = AlignmentGateway(session)
        try:
            assert not gateway.cache.enabled
            direct = gateway.default_scheduler.request(
                reads_a[:8], timeout=60.0).text
            routed = gateway.request(reads_a[:8]).text
            assert routed == direct
        finally:
            gateway.close()


# -- heap accounting -----------------------------------------------------------

class TestModelledHeapBudget:
    def test_session_heap_bytes_positive_and_stable(self, datasets,
                                                    small_config):
        from repro.gateway import modelled_heap_bytes
        genome_a, _reads_a, _genome_b, _reads_b = datasets
        session = MerAligner(small_config).prepare(
            genome_a.contigs, n_ranks=4, machine=MACHINE,
            backend="cooperative")
        try:
            first = modelled_heap_bytes(session)
            assert first > 0
            assert modelled_heap_bytes(session) == first
        finally:
            session.close()

    def test_budget_evicts_registered_index(self, datasets, small_config):
        genome_a, _reads_a, genome_b, reads_b = datasets
        session = MerAligner(small_config).prepare(
            genome_a.contigs, n_ranks=4, machine=MACHINE,
            backend="cooperative")
        from repro.gateway import modelled_heap_bytes
        # Room for the pinned default plus exactly one registered index.
        budget = int(modelled_heap_bytes(session) * 2.5)
        gateway = AlignmentGateway(session, heap_budget_bytes=budget)
        try:
            gateway.register("refb", genome_b.contigs)
            summary = gateway.register("refc", genome_b.contigs)
            assert summary["evicted"] == ["refb"]
            assert gateway.registry.names() == ["default", "refc"]
            with pytest.raises(KeyError):
                gateway.request(reads_b[:2], index="refb")
            assert gateway.request(reads_b[:2], index="refc").text
        finally:
            gateway.close()


# -- the wire protocol ---------------------------------------------------------

class TestGatewayWireProtocol:
    @pytest.fixture()
    def service(self, datasets, small_config):
        genome_a, _reads_a, genome_b, _reads_b = datasets
        with api.serve(genome_a.contigs, config=small_config, n_ranks=4,
                       machine=MACHINE, port=0, max_wait_s=0.005,
                       indices={"refb": genome_b.contigs},
                       cache_ttl=300.0) as service:
            yield service

    def test_indices_register_evict_roundtrip(self, service, datasets,
                                              small_config, tmp_path):
        from repro.io.fasta import write_fasta
        _genome_a, _reads_a, genome_b, _reads_b = datasets
        client = service.client()
        names = [e["name"] for e in client.indices()["indices"]]
        assert names == ["default", "refb"]
        path = tmp_path / "refc.fa"
        write_fasta(path, [(f"c{i}", s)
                           for i, s in enumerate(genome_b.contigs)])
        summary = client.register_index("refc", path)
        assert summary["name"] == "refc"
        assert summary["n_targets"] == len(genome_b.contigs)
        names = [e["name"] for e in client.indices()["indices"]]
        assert "refc" in names
        client.evict_index("refc")
        names = [e["name"] for e in client.indices()["indices"]]
        assert "refc" not in names
        # The pinned default refuses eviction with ERR, connection usable.
        with pytest.raises(ServiceError, match="pinned"):
            client.evict_index("default")
        assert client.ping()

    def test_routed_queries_and_cache_hit_over_the_wire(self, service,
                                                        datasets,
                                                        small_config):
        genome_a, reads_a, genome_b, reads_b = datasets
        client = service.client()
        sam_a = client.align_sam(reads_a[:8], tenant="alice")
        sam_b = client.align_sam(reads_b[:8], index="refb", tenant="bob")
        assert sam_a == offline_sam(small_config, genome_a.contigs,
                                    reads_a[:8])
        assert sam_b == offline_sam(small_config, genome_b.contigs,
                                    reads_b[:8])
        # Exact duplicate: served from the cache, byte-identical, counted.
        assert client.align_sam(reads_b[:8], index="refb",
                                tenant="bob") == sam_b
        counters = client.metrics()["metrics"]["counters"]
        assert counters["gateway_cache_hits_total"] >= 1
        gateway_stats = client.stats()["gateway"]
        assert gateway_stats["cache"]["hits"] >= 1
        routed = {key for key in counters if
                  key.startswith("gateway_requests_total")}
        assert any('tenant="alice"' in key for key in routed)
        assert any('index="refb"' in key for key in routed)

    def test_unknown_index_is_err_not_disconnect(self, service, datasets):
        _genome_a, reads_a, _genome_b, _reads_b = datasets
        client = service.client()
        with pytest.raises(ServiceError, match="unknown index"):
            client.align_sam(reads_a[:2], index="nope")
        assert client.ping()

    def test_busy_reply_when_pending_queue_full(self, datasets, small_config):
        genome_a, reads_a, _genome_b, _reads_b = datasets
        with api.serve(genome_a.contigs, config=small_config, n_ranks=4,
                       machine=MACHINE, port=0, max_pending=0) as service:
            client = service.client()
            with pytest.raises(ServiceBusyError, match="queue is full"):
                client.align_sam(reads_a[:2])
            counters = service.metrics()["metrics"]["counters"]
            assert counters['server_busy_total{verb="ALIGN"}'] == 1
            assert counters['gateway_rejected_total{tenant="default"}'] == 1
            # The connection survives a BUSY; non-admission verbs still work.
            assert client.ping()
            assert client.stats()["gateway"]["admission"]["rejected"] == 1

    def test_non_gateway_server_rejects_routing_options(self, datasets,
                                                        small_config):
        """The legacy direct-scheduler server still works and reports the
        gateway-only surface as ERR."""
        from repro.service.scheduler import RequestScheduler
        from repro.service.server import AlignmentServer
        genome_a, reads_a, _genome_b, _reads_b = datasets
        session = MerAligner(small_config).prepare(
            genome_a.contigs, n_ranks=4, machine=MACHINE,
            backend="cooperative")
        scheduler = RequestScheduler(session, max_wait_s=0.005)
        server = AlignmentServer(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = SocketAlignmentClient(host=server.host, port=server.port,
                                           timeout=30.0)
            assert client.align_sam(reads_a[:2])
            with pytest.raises(ServiceError, match="gateway"):
                client.align_sam(reads_a[:2], index="other")
            with pytest.raises(ServiceError, match="gateway"):
                client.indices()
            assert "gateway" not in client.stats()
        finally:
            server.shutdown()
            thread.join(timeout=10.0)
            scheduler.close()
            session.close()


# -- satellite regressions -----------------------------------------------------

class TestErrEncodingRegression:
    def test_non_ascii_error_message_reaches_client(self, datasets,
                                                    small_config):
        """A non-ASCII exception message (here: a bad FASTA path) must come
        back as a UTF-8 ``ERR`` reply, not kill the connection."""
        genome_a, _reads_a, _genome_b, _reads_b = datasets
        with api.serve(genome_a.contigs, config=small_config, n_ranks=4,
                       machine=MACHINE, port=0) as service:
            client = service.client()
            with pytest.raises(ServiceError) as excinfo:
                client.register_index("bad", "/nonexistent/数据.fa")
            assert "数据" in str(excinfo.value)
            # Same command loop, same connection class: still usable.
            assert client.ping()


class TestConnectRetry:
    def test_retries_until_listener_appears(self):
        """With retries enabled the client rides out a late server start."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve_one_ping():
            time.sleep(0.3)
            listener.listen()
            conn, _addr = listener.accept()
            with conn:
                conn.makefile("rb").readline()
                conn.sendall(b"OK 0\n")

        thread = threading.Thread(target=serve_one_ping, daemon=True)
        thread.start()
        try:
            client = SocketAlignmentClient(host="127.0.0.1", port=port,
                                           timeout=10.0, connect_retries=10)
            assert client.ping()
        finally:
            thread.join(timeout=10.0)
            listener.close()

    def test_no_retries_by_default_and_bounded_when_enabled(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()   # bound but never listening: connections refused
        client = SocketAlignmentClient(host="127.0.0.1", port=dead_port,
                                       timeout=1.0)
        with pytest.raises(OSError):
            client._roundtrip("PING")
        bounded = SocketAlignmentClient(host="127.0.0.1", port=dead_port,
                                        timeout=1.0, connect_retries=2,
                                        retry_base_s=0.01)
        start = time.monotonic()
        with pytest.raises(OSError):
            bounded._roundtrip("PING")
        assert time.monotonic() - start < 5.0
        with pytest.raises(ValueError):
            SocketAlignmentClient(connect_retries=-1)


# -- the tenant-aware load generator ------------------------------------------

class TestLoadGeneratorTenants:
    def test_tenant_draw_preserves_untenanted_schedule(self, datasets):
        from repro.obs.loadgen import LoadGenerator
        _genome_a, reads_a, _genome_b, _reads_b = datasets
        plain = LoadGenerator("h", 1, reads_a, qps=10.0, n_requests=12,
                              workloads=("align", "count"), seed=3)
        tenanted = LoadGenerator("h", 1, reads_a, qps=10.0, n_requests=12,
                                 workloads=("align", "count"), seed=3,
                                 tenants=("alice", "bob"))
        plain_plan = plain._plan()
        tenanted_plan = tenanted._plan()
        # Adding tenants must not perturb the workload/read draws.
        assert ([(w, [r.name for r in reads])
                 for _i, w, reads, _t in plain_plan]
                == [(w, [r.name for r in reads])
                    for _i, w, reads, _t in tenanted_plan])
        assert all(t == "" for _i, _w, _r, t in plain_plan)
        tenants = {t for _i, _w, _r, t in tenanted_plan}
        assert tenants == {"alice", "bob"}

    def test_mixed_tenants_against_gateway_server(self, datasets,
                                                  small_config):
        from repro.obs.loadgen import LoadGenerator
        genome_a, reads_a, genome_b, _reads_b = datasets
        with api.serve(genome_a.contigs, config=small_config, n_ranks=4,
                       machine=MACHINE, port=0, max_wait_s=0.005,
                       indices={"refb": genome_b.contigs},
                       cache_ttl=300.0) as service:
            generator = LoadGenerator(
                service.host, service.port, reads_a, qps=200.0,
                concurrency=4, n_requests=10, reads_per_request=4,
                workloads=("align", "count"), seed=1,
                tenants=("alice", "bob"), connect_retries=2)
            report = generator.run()
            assert report.n_errors == 0
            assert report.n_busy == 0
            assert sum(report.counts_by_tenant().values()) == 10
            doc = report.to_json_dict()
            assert doc["n_busy"] == 0
            assert set(doc["counts_by_tenant"]) <= {"alice", "bob"}
