"""Tests for the read error model."""

import numpy as np
import pytest

from repro.dna.errors import ReadErrorModel, apply_substitutions
from repro.dna.sequence import is_valid_dna


class TestApplySubstitutions:
    def test_zero_rate_is_identity(self, rng):
        seq = "ACGT" * 20
        mutated, n = apply_substitutions(seq, 0.0, rng)
        assert mutated == seq
        assert n == 0

    def test_full_rate_changes_every_base(self, rng):
        seq = "ACGT" * 20
        mutated, n = apply_substitutions(seq, 1.0, rng)
        assert n == len(seq)
        assert all(a != b for a, b in zip(seq, mutated))

    def test_output_is_valid_dna(self, rng):
        mutated, _ = apply_substitutions("ACGT" * 50, 0.3, rng)
        assert is_valid_dna(mutated)

    def test_error_count_matches_differences(self, rng):
        seq = "ACGT" * 50
        mutated, n = apply_substitutions(seq, 0.2, rng)
        assert n == sum(1 for a, b in zip(seq, mutated) if a != b)

    def test_empty_sequence(self, rng):
        assert apply_substitutions("", 0.5, rng) == ("", 0)

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            apply_substitutions("ACGT", 1.5, rng)

    def test_rate_statistics(self):
        rng = np.random.default_rng(0)
        seq = "ACGT" * 2500
        _, n = apply_substitutions(seq, 0.1, rng)
        assert 0.05 * len(seq) < n < 0.15 * len(seq)


class TestReadErrorModel:
    def test_corrupt_marks_qualities(self, rng):
        model = ReadErrorModel(substitution_rate=0.5)
        seq = "ACGT" * 25
        mutated, qual = model.corrupt(seq, rng)
        assert len(mutated) == len(qual) == len(seq)
        for original, new, q in zip(seq, mutated, qual):
            assert q == (model.quality_high if original == new else model.quality_low)

    def test_error_free_factory(self, rng):
        model = ReadErrorModel.error_free()
        seq = "ACGTACGT"
        mutated, qual = model.corrupt(seq, rng)
        assert mutated == seq
        assert qual == model.quality_high * len(seq)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            ReadErrorModel(substitution_rate=-0.1)

    def test_invalid_quality_chars_raise(self):
        with pytest.raises(ValueError):
            ReadErrorModel(quality_high="II")
