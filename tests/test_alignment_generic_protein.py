"""Tests for alphabet-generic alignment and the protein extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.generic import (
    Alphabet,
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    SubstitutionMatrix,
    local_align,
)
from repro.alignment.protein import ProteinSeedIndexAligner, blosum62
from repro.alignment.scoring import ScoringScheme
from repro.alignment.smith_waterman import smith_waterman

protein_strings = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=40)
dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=40)


class TestAlphabet:
    def test_encode_decode_round_trip(self):
        seq = "MKTAYIAKQR"
        assert PROTEIN_ALPHABET.decode(PROTEIN_ALPHABET.encode(seq)) == seq

    def test_foreign_symbol_raises(self):
        with pytest.raises(ValueError):
            PROTEIN_ALPHABET.encode("MKTB*")
        with pytest.raises(ValueError):
            DNA_ALPHABET.encode("ACGN")

    def test_decode_out_of_range_raises(self):
        with pytest.raises(ValueError):
            DNA_ALPHABET.decode(np.array([0, 9]))

    def test_validation(self):
        with pytest.raises(ValueError):
            Alphabet("AAB")
        with pytest.raises(ValueError):
            Alphabet("")
        assert len(PROTEIN_ALPHABET) == 20
        assert "A" in DNA_ALPHABET and "N" not in DNA_ALPHABET

    def test_is_valid(self):
        assert PROTEIN_ALPHABET.is_valid("MKWY")
        assert not PROTEIN_ALPHABET.is_valid("MKX")


class TestSubstitutionMatrix:
    def test_match_mismatch_factory(self):
        matrix = SubstitutionMatrix.match_mismatch(DNA_ALPHABET, 2, 3, 5, 2)
        assert matrix.score("A", "A") == 2
        assert matrix.score("A", "C") == -3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SubstitutionMatrix(alphabet=DNA_ALPHABET,
                               scores=np.zeros((3, 3), dtype=np.int64))

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            SubstitutionMatrix.match_mismatch(DNA_ALPHABET, 1, 1, 1, 2)

    def test_blosum62_properties(self):
        matrix = blosum62()
        assert matrix.scores.shape == (20, 20)
        assert np.array_equal(matrix.scores, matrix.scores.T)
        assert matrix.score("W", "W") == 11
        assert matrix.score("A", "A") == 4
        assert matrix.score("C", "E") == -4
        assert matrix.score("I", "L") == 2


class TestGenericLocalAlignment:
    def test_matches_dna_kernel(self):
        """With a match/mismatch matrix the generic kernel must equal the DNA one."""
        scheme = ScoringScheme(match=2, mismatch=3, gap_open=5, gap_extend=2)
        matrix = SubstitutionMatrix.match_mismatch(DNA_ALPHABET, 2, 3, 5, 2)
        cases = [("ACGTACGT", "ACGTTCGT"), ("CGTA", "AACGTAAA"),
                 ("ACGTACGT", "ACGTGGACGT"), ("AAAA", "CCCC")]
        for query, target in cases:
            expected = smith_waterman(query, target, scoring=scheme,
                                      traceback=False).score
            assert local_align(query, target, matrix).score == expected

    @given(dna_strings, dna_strings)
    @settings(max_examples=40, deadline=None)
    def test_matches_dna_kernel_property(self, query, target):
        scheme = ScoringScheme(match=2, mismatch=3, gap_open=5, gap_extend=2)
        matrix = SubstitutionMatrix.match_mismatch(DNA_ALPHABET, 2, 3, 5, 2)
        expected = smith_waterman(query, target, scoring=scheme, traceback=False).score
        assert local_align(query, target, matrix).score == expected

    def test_protein_self_alignment_score(self):
        matrix = blosum62()
        seq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"
        result = local_align(seq, seq, matrix)
        expected = sum(matrix.score(ch, ch) for ch in seq)
        assert result.score == expected
        assert result.query_end == len(seq)

    def test_protein_conservative_substitution_scores_higher(self):
        matrix = blosum62()
        base = "MKWVLLLW"
        conservative = "MKWILLLW"   # V->I is a positive BLOSUM62 substitution
        radical = "MKWPLLLW"        # V->P is negative
        assert (local_align(base, conservative, matrix).score
                > local_align(base, radical, matrix).score)

    def test_empty_inputs(self):
        matrix = blosum62()
        assert local_align("", "MKW", matrix).score == 0
        assert local_align("MKW", "", matrix).score == 0

    @given(protein_strings)
    @settings(max_examples=30, deadline=None)
    def test_protein_self_alignment_property(self, seq):
        matrix = blosum62()
        result = local_align(seq, seq, matrix)
        assert result.score == sum(matrix.score(ch, ch) for ch in seq)


class TestProteinSeedIndexAligner:
    TARGETS = [
        "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ",
        "MSDNGPQNQRNAPRITFGGPSDSTGSNQNGERSGARSKQRRPQGLPNNTASWFTALTQHGKEDLKF",
        "MAHHHHHHVGTGSNQNGERSGARSKQRRPQGLPNNTASMKTAYIAKQRQISFVKSHFSRQLEERLG",
    ]

    def test_query_finds_its_source(self):
        aligner = ProteinSeedIndexAligner(seed_length=4)
        aligner.build_index(self.TARGETS)
        query = self.TARGETS[0][10:40]
        hits = aligner.align("q1", query)
        assert hits
        assert hits[0].target_id in (0, 2)   # target 2 shares the region
        assert hits[0].score >= 4 * len(query) * 0.5

    def test_shared_region_hits_both_targets(self):
        aligner = ProteinSeedIndexAligner(seed_length=4)
        aligner.build_index(self.TARGETS)
        query = "GSNQNGERSGARSKQRRPQGLPNNTAS"   # present in targets 1 and 2
        hit_targets = {hit.target_id for hit in aligner.align("q", query)}
        assert {1, 2} <= hit_targets

    def test_hits_sorted_by_score(self):
        aligner = ProteinSeedIndexAligner(seed_length=4)
        aligner.build_index(self.TARGETS)
        hits = aligner.align("q", self.TARGETS[2][:35])
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_no_hits_for_unrelated_query(self):
        aligner = ProteinSeedIndexAligner(seed_length=5, min_score=30)
        aligner.build_index(self.TARGETS)
        assert aligner.align("q", "WWWWWCCCCCWWWWW") == []

    def test_align_before_index_raises(self):
        with pytest.raises(RuntimeError):
            ProteinSeedIndexAligner().align("q", "MKTAY")

    def test_invalid_sequences_raise(self):
        aligner = ProteinSeedIndexAligner()
        with pytest.raises(ValueError):
            aligner.build_index(["MKT*Z"])
        aligner.build_index(self.TARGETS)
        with pytest.raises(ValueError):
            aligner.align("q", "MKTA1")

    def test_seed_count(self):
        aligner = ProteinSeedIndexAligner(seed_length=4)
        stored = aligner.build_index(self.TARGETS)
        expected = sum(len(t) - 4 + 1 for t in self.TARGETS)
        assert stored == expected == aligner.n_seeds

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProteinSeedIndexAligner(seed_length=0)
        with pytest.raises(ValueError):
            ProteinSeedIndexAligner(max_candidates_per_seed=0)
