"""Tests for the composable stage-pipeline API (AlignmentPlan / PlanRunner).

Three contracts are pinned here:

* **Stage-boundary equivalence** -- the stage objects reproduce, read for
  read, the exact outputs the pre-refactor monolithic aligner produced at
  each internal boundary (exact-path resolution, seed lookups, candidate
  selection, final alignments).  The ground truth is
  ``tests/fixtures/stage_boundaries.json``, captured from the monolith
  *before* the refactor on a deterministic dataset.
* **Plan validation** -- impossible pipelines (unsatisfied stage inputs,
  missing sink, missing ReadQueries) fail at construction.
* **Workload equivalence** -- the plan-built ``count`` and ``screen``
  workloads produce byte-identical TSV across all three execution backends,
  with bulk batching on and off, offline and through a resident session.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import AlignerConfig
from repro.core.plan import (AlignmentPlan, BuildIndex, CandidateCollect,
                             EmitSam, EmitScreen, EmitSeedCounts, ExactPath,
                             ExtendAlign, PlanRunner, PlanValidationError,
                             ReadQueries, ReadState, SeedLookup, SinkStage,
                             StageContext, plan_for_workload)
from repro.core.pipeline import MerAligner
from repro.core.seed_index import SeedIndex
from repro.core.stats import AlignmentCounters
from repro.core.target_store import TargetStore
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime

FIXTURE = Path(__file__).parent / "fixtures" / "stage_boundaries.json"
BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)


def alignment_key(alignment):
    """The fixture's JSON-friendly byte-identity key of an alignment."""
    return [alignment.query_name, alignment.target_id, alignment.score,
            alignment.query_start, alignment.query_end,
            alignment.target_start, alignment.target_end, alignment.strand,
            alignment.is_exact,
            [[int(n), str(getattr(op, "value", op))]
             for n, op in (alignment.cigar or [])],
            alignment.identity]


@pytest.fixture(scope="module")
def fixture_data():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def fixture_setup(fixture_data):
    """The fixture's dataset + a built index on a cooperative runtime."""
    meta = fixture_data["dataset"]
    spec = GenomeSpec(name="stagefix", genome_length=meta["genome_length"],
                      n_contigs=meta["n_contigs"],
                      repeat_fraction=meta["repeat_fraction"],
                      repeat_unit_length=meta["repeat_unit_length"],
                      min_contig_length=meta["min_contig_length"])
    read_spec = ReadSetSpec(coverage=meta["coverage"],
                            read_length=meta["read_length"],
                            error_rate=meta["error_rate"])
    genome, reads = make_dataset(spec, read_spec, seed=meta["seed"])
    reads = reads[:meta["n_reads"]]
    config = AlignerConfig(seed_length=fixture_data["config"]["seed_length"],
                           fragment_length=fixture_data["config"]["fragment_length"],
                           use_seed_index_cache=False, use_target_cache=False)
    runner = PlanRunner(AlignmentPlan.default(), config)
    runtime = PgasRuntime(n_ranks=fixture_data["n_ranks"], machine=EDISON_LIKE)
    target_store = TargetStore(runtime)
    seed_index = SeedIndex(runtime, config)

    def build(ctx):
        yield from runner.index_program(ctx, list(genome.contigs),
                                        target_store, seed_index)

    runtime.run_spmd(build, backend="cooperative")
    return genome, reads, config, runtime, seed_index, target_store


def make_xs(setup):
    _genome, _reads, config, runtime, seed_index, target_store = setup
    return StageContext(runtime.context(0), config, seed_index, target_store,
                        None, None, AlignmentCounters())


class TestStageBoundaryEquivalence:
    """The stage objects replay the monolith's per-stage outputs exactly."""

    def test_exact_path_matches_monolith(self, fixture_setup, fixture_data):
        xs = make_xs(fixture_setup)
        config, reads = fixture_setup[2], fixture_setup[1]
        stage = ExactPath()
        for read in reads:
            item = ReadState(read, config)
            stage.process_read(xs, item)
            expected = fixture_data["reads"][read.name]["exact"]
            got = alignment_key(item.resolved) if item.resolved else None
            assert got == expected, read.name

    def test_seed_lookup_matches_monolith(self, fixture_setup, fixture_data):
        xs = make_xs(fixture_setup)
        config, reads = fixture_setup[2], fixture_setup[1]
        stage = SeedLookup()
        for read in reads:
            item = ReadState(read, config)
            stage.process_read(xs, item)
            got = [[strand, offset, 0 if entry is None else len(entry.values)]
                   for strand, offset, entry in item.lookups]
            assert got == fixture_data["reads"][read.name]["lookups"], read.name

    def test_candidate_collect_matches_monolith(self, fixture_setup,
                                                fixture_data):
        xs = make_xs(fixture_setup)
        config, reads = fixture_setup[2], fixture_setup[1]
        lookup, collect = SeedLookup(), CandidateCollect()
        for read in reads:
            item = ReadState(read, config)
            lookup.process_read(xs, item)
            collect.process_read(xs, item)
            got = [[strand, owner, str(key), placement.offset, query_offset]
                   for (strand, (owner, key)), (placement, query_offset)
                   in item.candidates.items()]
            assert got == fixture_data["reads"][read.name]["candidates"], \
                read.name

    def test_full_stage_chain_matches_monolith_alignments(self, fixture_setup,
                                                          fixture_data):
        xs = make_xs(fixture_setup)
        config, reads = fixture_setup[2], fixture_setup[1]
        stages = (ExactPath(), SeedLookup(), CandidateCollect(), ExtendAlign())
        sink = EmitSam()
        for read in reads:
            item = ReadState(read, config)
            for stage in stages:
                if not item.pending:
                    break
                stage.process_read(xs, item)
            got = [alignment_key(a) for a in sink.emit(xs, item)]
            assert got == fixture_data["reads"][read.name]["alignments"], \
                read.name


class TestPlanValidation:
    def test_default_plans_validate(self):
        for factory in (AlignmentPlan.default, AlignmentPlan.seed_count,
                        AlignmentPlan.exact_screen):
            plan = factory()
            assert isinstance(plan.sink, SinkStage)
            assert plan.build_stage is not None

    def test_unsatisfied_input_rejected(self):
        with pytest.raises(PlanValidationError, match="seed_index"):
            AlignmentPlan(name="broken", stages=(
                ReadQueries(), SeedLookup(), EmitSeedCounts()))

    def test_missing_sink_rejected(self):
        with pytest.raises(PlanValidationError, match="SinkStage"):
            AlignmentPlan(name="nosink", stages=(
                BuildIndex(), ReadQueries(), SeedLookup()))

    def test_missing_read_queries_rejected(self):
        class NullSink(SinkStage):
            name = "null"
            inputs = ()

        with pytest.raises(PlanValidationError, match="ReadQueries"):
            AlignmentPlan(name="nochunk", stages=(BuildIndex(), NullSink()))

    def test_dataflow_without_read_queries_rejected(self):
        # ExactPath consumes read_chunk, which only ReadQueries produces.
        with pytest.raises(PlanValidationError, match="read_chunk"):
            AlignmentPlan(name="nochunk2", stages=(
                BuildIndex(), ExactPath(), EmitScreen()))

    def test_non_stage_rejected(self):
        with pytest.raises(PlanValidationError, match="not a Stage"):
            AlignmentPlan(name="junk", stages=(BuildIndex(), "extend"))

    def test_describe_lists_signatures(self):
        text = AlignmentPlan.seed_count().describe()
        assert "workload: count" in text
        assert "seed_lookup(read_chunk, seed_index -> seed_hits)" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            plan_for_workload("frobnicate")


class TestDefaultPlanEquivalence:
    """MerAligner presets and explicit plan execution agree exactly."""

    def test_run_plan_matches_run(self, small_dataset, small_config):
        genome, reads = small_dataset
        reads = reads[:60]
        via_preset = MerAligner(small_config).run(genome.contigs, reads,
                                                  n_ranks=4, machine=MACHINE)
        via_plan = PlanRunner(AlignmentPlan.default(), small_config).run(
            genome.contigs, reads, n_ranks=4, machine=MACHINE)
        assert [alignment_key(a) for a in via_preset.alignments] == \
            [alignment_key(a) for a in via_plan.output]
        assert via_plan.report.counters == via_preset.counters

    def test_report_carries_stage_stats(self, small_dataset, small_config):
        genome, reads = small_dataset
        report = MerAligner(small_config).run(genome.contigs, reads[:40],
                                              n_ranks=4, machine=MACHINE)
        names = [stage.name for stage in report.stage_stats]
        assert names == ["read_queries", "exact_path", "seed_lookup",
                         "candidate_collect", "extend_align", "emit_sam"]
        lookup = dict((s.name, s) for s in report.stage_stats)
        assert lookup["seed_lookup"].comm > 0
        assert lookup["extend_align"].compute > 0
        assert lookup["read_queries"].io > 0
        data = report.to_json_dict()
        assert data["schema_version"] == 3
        assert [s["name"] for s in data["stages"]] == names


def run_workload(workload, dataset, config, backend, bulk, n_reads=120):
    genome, reads = dataset
    cfg = config.with_(use_bulk_lookups=bulk, lookup_batch_size=16)
    result = PlanRunner(plan_for_workload(workload), cfg).run(
        genome.contigs, reads[:n_reads], n_ranks=4, machine=MACHINE,
        backend=backend)
    names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
    if workload == "count":
        return result.output.to_tsv()
    return result.output.to_tsv(names)


class TestWorkloadCrossBackendEquivalence:
    """count/screen: byte-identical TSV on 3 backends x bulk on/off."""

    @pytest.mark.parametrize("workload", ("count", "screen"))
    def test_backends_and_engines_agree(self, small_dataset, small_config,
                                        workload):
        texts = {
            (backend, bulk): run_workload(workload, small_dataset,
                                          small_config, backend, bulk)
            for backend in BACKENDS for bulk in (False, True)
        }
        reference = texts[("cooperative", False)]
        assert reference.startswith(f"#workload\t{workload}")
        for key, text in texts.items():
            assert text == reference, key

    def test_count_histogram_is_consistent(self, small_dataset, small_config):
        genome, reads = small_dataset
        result = PlanRunner(plan_for_workload("count"), small_config).run(
            genome.contigs, reads[:80], n_ranks=4, machine=MACHINE)
        summary = result.output
        assert summary.n_reads == 80
        assert sum(summary.histogram.values()) == summary.n_seed_lookups
        assert summary.n_missing == summary.histogram.get(0, 0)
        assert result.report.counters.seed_lookups == summary.n_seed_lookups
        # The count plan must never fetch or extend.
        assert result.report.counters.sw_calls == 0
        assert result.report.counters.candidates_examined == 0

    def test_screen_output_independent_of_exact_match_knob(self, small_dataset,
                                                           small_config):
        """--no-exact-match is an align-phase knob: the screen plan forces
        single-copy marking in its own BuildIndex, so its rows must not
        change when the optimization is switched off."""
        with_opt = run_workload("screen", small_dataset, small_config,
                                "cooperative", bulk=False, n_reads=60)
        without_opt = run_workload(
            "screen", small_dataset,
            small_config.with_(use_exact_match_optimization=False),
            "cooperative", bulk=False, n_reads=60)
        assert with_opt == without_opt

    def test_session_screen_requires_marked_index(self, small_dataset,
                                                  small_config):
        """A resident index built without single-copy marking cannot serve
        the screen workload (it would silently report different rows)."""
        genome, reads = small_dataset
        config = small_config.with_(use_exact_match_optimization=False)
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            with pytest.raises(RuntimeError, match="single-copy"):
                session.screen(reads[:10])
            # align still works against the unmarked index.
            assert session.align(reads[:10]) is not None

    def test_screen_rows_cover_every_read_in_input_order(self, small_dataset,
                                                         small_config):
        genome, reads = small_dataset
        reads = reads[:60]
        result = PlanRunner(plan_for_workload("screen"), small_config).run(
            genome.contigs, reads, n_ranks=4, machine=MACHINE)
        summary = result.output
        assert [row[0] for row in summary.rows] == [r.name for r in reads]
        assert 0 < summary.n_hits < len(reads)
        # Screen hits agree with the align plan's exact-path hits.
        report = MerAligner(small_config).run(genome.contigs, reads,
                                              n_ranks=4, machine=MACHINE)
        assert summary.n_hits == report.counters.exact_path_hits
        # The screen plan must never run Smith-Waterman.
        assert result.report.counters.sw_calls == 0


class TestWorkloadsThroughService:
    """Sessions and the scheduler serve count/screen identical to offline."""

    @pytest.mark.parametrize("workload", ("count", "screen"))
    def test_session_matches_offline(self, small_dataset, small_config,
                                     workload):
        genome, reads = small_dataset
        reads = reads[:60]
        offline = run_workload(workload, (genome, reads), small_config,
                               "cooperative", bulk=False, n_reads=60)
        with MerAligner(small_config).prepare(genome.contigs, n_ranks=4,
                                              machine=MACHINE) as session:
            output = (session.count(reads) if workload == "count"
                      else session.screen(reads))
            assert session.render(workload, output) == offline

    def test_scheduler_serves_mixed_workloads(self, small_dataset,
                                              small_config):
        from repro.service import RequestScheduler
        genome, reads = small_dataset
        reads = reads[:40]
        config = small_config.with_(use_bulk_lookups=True,
                                    lookup_batch_size=16)
        offline_count = run_workload("count", (genome, reads), config,
                                     "cooperative", bulk=True, n_reads=40)
        offline_screen = run_workload("screen", (genome, reads), config,
                                      "cooperative", bulk=True, n_reads=40)
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            reference_sam = session.sam_for(session.align(reads).alignments)
            with RequestScheduler(session, max_wait_s=0.005) as scheduler:
                futures = [scheduler.submit(reads, workload=w)
                           for w in ("align", "count", "screen", "align")]
                results = [f.result(timeout=120.0) for f in futures]
        assert results[0].text == reference_sam
        assert results[3].text == reference_sam
        assert results[1].text == offline_count
        assert results[2].text == offline_screen
        # A batch never mixes workloads.
        by_batch = {}
        for result in results:
            by_batch.setdefault(result.batch_id, set()).add(result.workload)
        for workloads in by_batch.values():
            assert len(workloads) == 1

    def test_scheduler_rejects_unknown_workload(self, small_dataset,
                                                small_config):
        from repro.service import RequestScheduler
        genome, reads = small_dataset
        with MerAligner(small_config).prepare(genome.contigs, n_ranks=4,
                                              machine=MACHINE) as session:
            with RequestScheduler(session, max_wait_s=0.005) as scheduler:
                with pytest.raises(KeyError, match="unknown workload"):
                    scheduler.submit(reads[:5], workload="frobnicate")
