"""Tests for AlignerConfig."""

import pytest

from repro.core.config import AlignerConfig


class TestAlignerConfig:
    def test_defaults_match_paper(self):
        config = AlignerConfig()
        assert config.seed_length == 51
        assert config.aggregation_buffer_size == 1000
        assert config.use_aggregating_stores
        assert config.use_exact_match_optimization
        assert config.permute_reads

    def test_without_optimizations(self):
        baseline = AlignerConfig().without_optimizations()
        assert not baseline.use_aggregating_stores
        assert not baseline.use_seed_index_cache
        assert not baseline.use_target_cache
        assert not baseline.use_exact_match_optimization
        assert not baseline.permute_reads
        # untouched knobs survive
        assert baseline.seed_length == 51

    def test_with_override(self):
        config = AlignerConfig().with_(seed_length=19, fragment_length=400)
        assert config.seed_length == 19
        assert AlignerConfig().seed_length == 51  # original frozen

    def test_for_small_genome(self):
        config = AlignerConfig.for_small_genome()
        assert config.seed_length == 19
        assert config.fragment_length > config.seed_length

    def test_validation(self):
        with pytest.raises(ValueError):
            AlignerConfig(seed_length=0)
        with pytest.raises(ValueError):
            AlignerConfig(aggregation_buffer_size=0)
        with pytest.raises(ValueError):
            AlignerConfig(seed_length=51, fragment_length=40)
        with pytest.raises(ValueError):
            AlignerConfig(seed_stride=0)
        with pytest.raises(ValueError):
            AlignerConfig(max_alignments_per_seed=-1)
        with pytest.raises(ValueError):
            AlignerConfig(seed_cache_bytes_per_node=-1)
        with pytest.raises(ValueError):
            AlignerConfig(window_padding=-1)

    def test_frozen(self):
        config = AlignerConfig()
        with pytest.raises(AttributeError):
            config.seed_length = 10
