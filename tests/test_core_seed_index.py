"""Tests for the distributed seed index construction and lookups."""


from repro.core.config import AlignerConfig
from repro.core.seed_index import SeedIndex
from repro.core.target_store import TargetStore
from repro.dna.kmer import count_kmers
from repro.dna.sequence import random_dna
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.gptr import GlobalPointer
from repro.pgas.runtime import PgasRuntime


def build_index(contigs, k=15, use_aggregating=True, n_ranks=4,
                use_exact_opt=True):
    """Build a seed index over `contigs` the way the pipeline does, but inline."""
    runtime = PgasRuntime(n_ranks=n_ranks, machine=EDISON_LIKE.with_cores_per_node(2))
    config = AlignerConfig(seed_length=k, fragment_length=10 ** 6,
                           use_aggregating_stores=use_aggregating,
                           aggregation_buffer_size=16,
                           use_exact_match_optimization=use_exact_opt)
    store = TargetStore(runtime)
    index = SeedIndex(runtime, config, buckets_per_rank=128)
    pointers = []
    for target_id, contig in enumerate(contigs):
        owner = target_id % n_ranks
        ctx = runtime.contexts[owner]
        record = store.store_fragment(ctx, target_id, target_id, 0, contig)
        pointer = GlobalPointer(owner=owner, segment=TargetStore.SEGMENT,
                                key=target_id, nbytes=record.nbytes)
        pointers.append((ctx, record, pointer))
    for ctx, record, pointer in pointers:
        index.add_fragment_seeds(ctx, record, pointer)
    for ctx in runtime.contexts:
        index.flush(ctx)
    for ctx in runtime.contexts:
        index.drain(ctx)
    if use_exact_opt:
        for ctx in runtime.contexts:
            index.mark_single_copy_flags(ctx, store)
    return runtime, store, index


class TestConstruction:
    def test_all_seeds_indexed(self, rng):
        contigs = [random_dna(300, rng=rng) for _ in range(4)]
        k = 15
        _, _, index = build_index(contigs, k=k)
        expected = count_kmers(contigs, k)
        assert index.n_keys == len(expected)
        assert index.n_values == sum(expected.values())

    def test_counts_match_reference(self, rng):
        contigs = [random_dna(200, rng=rng) for _ in range(3)]
        k = 9
        _, _, index = build_index(contigs, k=k)
        expected = count_kmers(contigs, k)
        for kmer, count in list(expected.items())[:100]:
            assert index.count_of(kmer) == count

    def test_aggregating_and_direct_build_identical_index(self, rng):
        contigs = [random_dna(250, rng=rng) for _ in range(3)]
        k = 13
        _, _, agg = build_index(contigs, k=k, use_aggregating=True)
        _, _, direct = build_index(contigs, k=k, use_aggregating=False)
        assert agg.n_keys == direct.n_keys
        assert agg.n_values == direct.n_values
        assert agg.keys_per_rank() == direct.keys_per_rank()

    def test_aggregating_uses_fewer_messages(self, rng):
        contigs = [random_dna(400, rng=rng) for _ in range(4)]
        agg_runtime, _, _ = build_index(contigs, k=15, use_aggregating=True)
        direct_runtime, _, _ = build_index(contigs, k=15, use_aggregating=False)
        assert agg_runtime.total_stats.messages < direct_runtime.total_stats.messages / 3
        assert agg_runtime.total_stats.atomics < direct_runtime.total_stats.atomics / 3

    def test_keys_balanced_across_ranks(self, rng):
        contigs = [random_dna(500, rng=rng) for _ in range(4)]
        _, _, index = build_index(contigs, k=15)
        per_rank = index.keys_per_rank()
        assert min(per_rank) > 0
        assert max(per_rank) < 1.5 * (sum(per_rank) / len(per_rank))


class TestSingleCopyMarking:
    def test_unique_contigs_stay_single_copy(self, rng):
        contigs = [random_dna(200, rng=rng)]
        _, store, _ = build_index(contigs, k=15)
        assert store.single_copy_fraction() == 1.0

    def test_duplicate_contigs_marked(self, rng):
        contig = random_dna(120, rng=rng)
        # identical contigs: every seed occurs twice, so none is single-copy
        _, store, _ = build_index([contig, contig], k=15)
        assert store.single_copy_fraction() == 0.0

    def test_partial_duplication(self, rng):
        shared = random_dna(80, rng=rng)
        a = shared + random_dna(120, rng=rng)
        b = shared + random_dna(120, rng=rng)
        c = random_dna(200, rng=rng)
        _, store, _ = build_index([a, b, c], k=15)
        flags = {f.fragment_id: f.single_copy_seeds for f in store.all_fragments()}
        assert flags[0] is False and flags[1] is False
        assert flags[2] is True

    def test_marking_skipped_when_disabled(self, rng):
        contig = random_dna(120, rng=rng)
        _, store, _ = build_index([contig, contig], k=15, use_exact_opt=False)
        # mark_single_copy_flags never ran, flags keep their optimistic default
        assert store.single_copy_fraction() == 1.0


class TestLookup:
    def test_lookup_finds_placements(self, rng):
        contigs = [random_dna(150, rng=rng) for _ in range(2)]
        runtime, _, index = build_index(contigs, k=11)
        ctx = runtime.contexts[0]
        kmer = contigs[1][20:31]
        entry = index.lookup(ctx, kmer)
        assert entry is not None
        offsets = [p.offset for p in entry.values
                   if p.fragment.key == 1]
        assert 20 in offsets

    def test_lookup_missing_seed(self, rng):
        contigs = ["ACGT" * 50]
        runtime, _, index = build_index(contigs, k=11)
        entry = index.lookup(runtime.contexts[0], "T" * 11)
        assert entry is None

    def test_lookup_charges_communication(self, rng):
        contigs = [random_dna(150, rng=rng)]
        runtime, _, index = build_index(contigs, k=11)
        ctx = runtime.contexts[1]
        gets_before = ctx.stats.gets
        index.lookup(ctx, contigs[0][:11])
        assert ctx.stats.gets == gets_before + 1
