"""Tests for banded Smith-Waterman."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment.banded import banded_smith_waterman
from repro.alignment.smith_waterman import smith_waterman

dna = st.text(alphabet="ACGT", min_size=0, max_size=30)


class TestBandedSmithWaterman:
    def test_identical_sequences_full_band(self):
        seq = "ACGTACGTAC"
        result = banded_smith_waterman(seq, seq, bandwidth=len(seq))
        assert result.score == smith_waterman(seq, seq).score

    def test_wide_band_equals_unbanded(self):
        query, target = "ACGTAACGGT", "ACGTTTACGGTAC"
        full = smith_waterman(query, target, traceback=False).score
        banded = banded_smith_waterman(query, target,
                                       bandwidth=max(len(query), len(target))).score
        assert banded == full

    def test_band_never_exceeds_full_score(self):
        query, target = "ACGTACGTAC", "TTACGTACGTACTT"
        full = smith_waterman(query, target, traceback=False).score
        for bandwidth in (0, 1, 2, 4, 8):
            banded = banded_smith_waterman(query, target, diagonal=2,
                                           bandwidth=bandwidth).score
            assert banded <= full

    def test_diagonal_hint_recovers_shifted_match(self):
        query = "ACGTACGT"
        target = "TTTT" + query + "GG"
        narrow_wrong = banded_smith_waterman(query, target, diagonal=0, bandwidth=1)
        narrow_right = banded_smith_waterman(query, target, diagonal=4, bandwidth=1)
        assert narrow_right.score > narrow_wrong.score
        assert narrow_right.score == smith_waterman(query, target).score

    def test_empty_inputs(self):
        assert banded_smith_waterman("", "ACGT").score == 0
        assert banded_smith_waterman("ACGT", "").score == 0

    def test_negative_bandwidth_raises(self):
        with pytest.raises(ValueError):
            banded_smith_waterman("ACGT", "ACGT", bandwidth=-1)

    @given(dna, dna, st.integers(min_value=0, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_banded_bounded_by_full_property(self, query, target, bandwidth):
        full = smith_waterman(query, target, traceback=False).score
        banded = banded_smith_waterman(query, target, bandwidth=bandwidth).score
        assert 0 <= banded <= full

    @given(dna)
    @settings(max_examples=40)
    def test_self_alignment_with_full_band(self, seq):
        result = banded_smith_waterman(seq, seq, bandwidth=max(1, len(seq)))
        assert result.score == smith_waterman(seq, seq, traceback=False).score
