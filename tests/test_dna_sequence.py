"""Tests for repro.dna.sequence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.sequence import (
    ALPHABET,
    codes_to_sequence,
    complement,
    is_valid_dna,
    random_dna,
    reverse_complement,
    sequence_to_codes,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestValidation:
    def test_valid_sequences(self):
        assert is_valid_dna("ACGT")
        assert is_valid_dna("")
        assert is_valid_dna("AAAA")

    def test_invalid_characters(self):
        assert not is_valid_dna("ACGN")
        assert not is_valid_dna("acgt")  # lower case is not canonical
        assert not is_valid_dna("ACG T")

    def test_alphabet_order(self):
        assert ALPHABET == "ACGT"


class TestComplement:
    def test_complement_basic(self):
        assert complement("ACGT") == "TGCA"

    def test_reverse_complement_basic(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAC") == "GTTT"
        assert reverse_complement("") == ""

    def test_reverse_complement_involution(self):
        seq = "ACGGTTACGATCG"
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(dna_strings)
    @settings(max_examples=50)
    def test_reverse_complement_involution_property(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(dna_strings)
    @settings(max_examples=50)
    def test_reverse_complement_length_preserved(self, seq):
        assert len(reverse_complement(seq)) == len(seq)


class TestCodes:
    def test_round_trip(self):
        seq = "ACGTTGCA"
        assert codes_to_sequence(sequence_to_codes(seq)) == seq

    def test_code_values(self):
        codes = sequence_to_codes("ACGT")
        assert list(codes) == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert list(sequence_to_codes("acgt")) == [0, 1, 2, 3]

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError, match="invalid DNA base"):
            sequence_to_codes("ACGN")

    def test_codes_out_of_range_raises(self):
        with pytest.raises(ValueError):
            codes_to_sequence(np.array([0, 5], dtype=np.uint8))

    def test_empty(self):
        assert codes_to_sequence(sequence_to_codes("")) == ""

    @given(dna_strings)
    @settings(max_examples=50)
    def test_round_trip_property(self, seq):
        assert codes_to_sequence(sequence_to_codes(seq)) == seq


class TestRandomDna:
    def test_length(self, rng):
        assert len(random_dna(100, rng=rng)) == 100
        assert random_dna(0, rng=rng) == ""

    def test_only_valid_bases(self, rng):
        assert is_valid_dna(random_dna(500, rng=rng))

    def test_gc_content_bias(self, rng):
        seq = random_dna(20000, rng=rng, gc_content=0.8)
        gc = sum(1 for b in seq if b in "GC") / len(seq)
        assert 0.7 < gc < 0.9

    def test_reproducible(self):
        a = random_dna(50, rng=np.random.default_rng(1))
        b = random_dna(50, rng=np.random.default_rng(1))
        assert a == b

    def test_negative_length_raises(self, rng):
        with pytest.raises(ValueError):
            random_dna(-1, rng=rng)

    def test_bad_gc_raises(self, rng):
        with pytest.raises(ValueError):
            random_dna(10, rng=rng, gc_content=1.5)
