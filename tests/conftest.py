"""Shared fixtures for the test suite.

Setting ``REPRO_TEST_TIMEOUT=<seconds>`` arms a SIGALRM-based per-test
timeout: a test that hangs (e.g. a deadlocked barrier when the suite runs
under ``REPRO_BACKEND=process``) fails fast with a ``TimeoutError`` instead
of stalling the whole job.  The hook is inert when the variable is unset, and
on platforms without ``SIGALRM``.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.config import AlignerConfig
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:g}s "
            f"(likely a deadlocked barrier): {item.nodeid}")

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset():
    """A small synthetic genome with contigs and error-carrying reads."""
    spec = GenomeSpec(name="test", genome_length=8000, n_contigs=4,
                      repeat_fraction=0.02, repeat_unit_length=150,
                      min_contig_length=200)
    read_spec = ReadSetSpec(coverage=3.0, read_length=70, error_rate=0.01)
    return make_dataset(spec, read_spec, seed=7)


@pytest.fixture
def perfect_dataset():
    """A small synthetic genome with error-free reads (for recall tests)."""
    spec = GenomeSpec(name="perfect", genome_length=6000, n_contigs=3,
                      repeat_fraction=0.0, min_contig_length=200)
    read_spec = ReadSetSpec(coverage=2.0, read_length=60, error_rate=0.0,
                            reverse_strand_fraction=0.5)
    return make_dataset(spec, read_spec, seed=11)


@pytest.fixture
def small_config() -> AlignerConfig:
    """An aligner configuration sized for the small test datasets."""
    return AlignerConfig(seed_length=21, fragment_length=600,
                         seed_cache_bytes_per_node=256 * 1024,
                         target_cache_bytes_per_node=256 * 1024)


@pytest.fixture
def runtime4() -> PgasRuntime:
    """A 4-rank simulated PGAS runtime on the Edison-like machine."""
    return PgasRuntime(n_ranks=4, machine=EDISON_LIKE)


@pytest.fixture
def runtime2() -> PgasRuntime:
    """A 2-rank runtime (for tests that need multiple nodes, see ppn below)."""
    return PgasRuntime(n_ranks=2, machine=EDISON_LIKE.with_cores_per_node(1))
