"""Tests for the 2-bit DNA compression codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.compression import (
    PackedSequence,
    pack_sequence,
    packed_nbytes,
    unpack_sequence,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=300)


class TestPackedNbytes:
    def test_values(self):
        assert packed_nbytes(0) == 0
        assert packed_nbytes(1) == 1
        assert packed_nbytes(4) == 1
        assert packed_nbytes(5) == 2
        assert packed_nbytes(100) == 25

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            packed_nbytes(-1)


class TestRoundTrip:
    def test_simple(self):
        seq = "ACGTACGTAC"
        assert unpack_sequence(pack_sequence(seq), len(seq)) == seq

    def test_empty(self):
        assert unpack_sequence(pack_sequence(""), 0) == ""

    def test_non_multiple_of_four(self):
        for length in (1, 2, 3, 5, 7, 9):
            seq = ("ACGT" * 3)[:length]
            assert unpack_sequence(pack_sequence(seq), length) == seq

    @given(dna_strings)
    @settings(max_examples=60)
    def test_round_trip_property(self, seq):
        assert unpack_sequence(pack_sequence(seq), len(seq)) == seq

    @given(dna_strings)
    @settings(max_examples=60)
    def test_compression_ratio_property(self, seq):
        packed = pack_sequence(seq)
        assert packed.size == packed_nbytes(len(seq))
        # 4x compression (up to the trailing partial byte).
        assert packed.size <= len(seq) // 4 + 1

    def test_unpack_too_short_buffer_raises(self):
        packed = pack_sequence("ACGT")
        with pytest.raises(ValueError):
            unpack_sequence(packed, 100)

    def test_unpack_negative_length_raises(self):
        with pytest.raises(ValueError):
            unpack_sequence(np.zeros(1, dtype=np.uint8), -1)


class TestPackedSequence:
    def test_from_string_and_back(self):
        ps = PackedSequence.from_string("ACGGTTCA")
        assert ps.to_string() == "ACGGTTCA"
        assert len(ps) == 8
        assert ps.nbytes == 2

    def test_slice(self):
        ps = PackedSequence.from_string("ACGGTTCAACGT")
        assert ps.slice(2, 6) == "GGTT"
        assert ps.slice(0, 12) == "ACGGTTCAACGT"

    def test_slice_out_of_bounds(self):
        ps = PackedSequence.from_string("ACGT")
        with pytest.raises(IndexError):
            ps.slice(2, 10)
        with pytest.raises(IndexError):
            ps.slice(-1, 2)
        with pytest.raises(IndexError):
            ps.slice(3, 2)

    def test_nbytes_is_quarter(self):
        ps = PackedSequence.from_string("A" * 100)
        assert ps.nbytes == 25
