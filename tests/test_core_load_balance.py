"""Tests for load balancing by random permutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balance import (
    chunk_for_rank,
    imbalance,
    permute_reads,
    theoretical_imbalance_bound,
)


class TestPermuteReads:
    def test_is_a_permutation(self):
        reads = [f"r{i}" for i in range(100)]
        permuted = permute_reads(reads, seed=1)
        assert sorted(permuted) == sorted(reads)
        assert permuted != reads  # astronomically unlikely to be identity

    def test_deterministic_given_seed(self):
        reads = list(range(50))
        assert permute_reads(reads, seed=7) == permute_reads(reads, seed=7)
        assert permute_reads(reads, seed=7) != permute_reads(reads, seed=8)

    def test_empty_and_singleton(self):
        assert permute_reads([], seed=0) == []
        assert permute_reads(["x"], seed=0) == ["x"]

    @given(st.lists(st.integers(), max_size=60), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_multiset_preserved_property(self, reads, seed):
        assert sorted(permute_reads(reads, seed=seed)) == sorted(reads)


class TestChunkForRank:
    def test_chunks_cover_everything(self):
        reads = list(range(53))
        chunks = [chunk_for_rank(reads, r, 7) for r in range(7)]
        assert sum(chunks, []) == reads
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            chunk_for_rank([1], 0, 0)
        with pytest.raises(IndexError):
            chunk_for_rank([1], 2, 2)


class TestImbalance:
    def test_imbalance_metric(self):
        assert imbalance([1.0, 1.0, 1.0]) == pytest.approx(0.0)
        assert imbalance([1.0, 3.0, 2.0]) == pytest.approx(1.0)
        assert imbalance([]) == 0.0

    def test_bound_zero_cases(self):
        assert theoretical_imbalance_bound(0, 8) == 0.0
        assert theoretical_imbalance_bound(100, 1) == 0.0

    def test_bound_errors(self):
        with pytest.raises(ValueError):
            theoretical_imbalance_bound(-1, 4)
        with pytest.raises(ValueError):
            theoretical_imbalance_bound(5, 0)

    def test_random_permutation_respects_bound(self):
        """Empirical check of the Theorem 1 behaviour: after random assignment
        the observed slow-read imbalance stays within the analytic bound."""
        rng = np.random.default_rng(0)
        p = 16
        h = 4000  # slow reads, h >> p log p
        for trial in range(5):
            assignment = rng.integers(0, p, size=h)
            counts = np.bincount(assignment, minlength=p)
            observed = counts.max() - h / p
            assert observed <= theoretical_imbalance_bound(h, p)

    def test_grouped_assignment_violates_balance(self):
        """Without permutation, grouped slow reads can all land on one rank."""
        p, h = 8, 800
        # all slow reads in the first chunk -> one rank gets everything
        per_rank = [h] + [0] * (p - 1)
        assert imbalance(per_rank) > theoretical_imbalance_bound(h, p)
