"""Integration tests for the end-to-end MerAligner pipeline."""

import pytest

from repro.core.pipeline import MerAligner
from repro.core.stats import AlignerReport
from repro.dna.synthetic import ReadRecord
from repro.io.fasta import write_fasta
from repro.io.fastq import write_fastq
from repro.io.seqdb import records_to_seqdb
from repro.pgas.cost_model import EDISON_LIKE


def run_small(dataset, config, n_ranks=4):
    genome, reads = dataset
    aligner = MerAligner(config)
    return genome, reads, aligner.run(genome.contigs, reads, n_ranks=n_ranks,
                                      machine=EDISON_LIKE.with_cores_per_node(2))


class TestEndToEnd:
    def test_report_structure(self, small_dataset, small_config):
        _, reads, report = run_small(small_dataset, small_config)
        assert isinstance(report, AlignerReport)
        assert report.n_ranks == 4
        assert report.counters.reads_processed == len(reads)
        phase_names = [p.name for p in report.phases]
        for expected in ("read_targets", "extract_and_store_seeds", "drain_stacks",
                         "mark_single_copy", "read_queries", "align_reads"):
            assert expected in phase_names
        assert report.total_time > 0
        assert report.alignment_time > 0
        assert report.index_construction_time > 0

    def test_high_aligned_fraction(self, small_dataset, small_config):
        _, _, report = run_small(small_dataset, small_config)
        # The paper reports 86-97% aligned; synthetic reads sampled from the
        # genome (some fall in inter-contig gaps) should align at >= 80%.
        assert report.counters.aligned_fraction > 0.8

    def test_exact_path_used(self, small_dataset, small_config):
        _, _, report = run_small(small_dataset, small_config)
        assert report.counters.exact_path_hits > 0
        assert 0.0 < report.counters.exact_fraction <= 1.0

    def test_error_free_reads_all_align_to_their_origin(self, perfect_dataset,
                                                        small_config):
        genome, reads, report = run_small(perfect_dataset, small_config)
        by_name = {}
        for alignment in report.alignments:
            by_name.setdefault(alignment.query_name, []).append(alignment)
        checked = 0
        for read in reads:
            if read.contig_id < 0:
                continue  # fell into an inter-contig gap
            assert read.name in by_name, f"{read.name} not aligned"
            # at least one alignment must hit the true origin
            hits = [a for a in by_name[read.name]
                    if a.target_id == read.contig_id
                    and abs(a.target_start - read.position) <= 2]
            assert hits, f"{read.name} missed its origin"
            checked += 1
        assert checked > 0

    def test_exact_alignments_match_target_text(self, perfect_dataset, small_config):
        genome, _, report = run_small(perfect_dataset, small_config)
        exact = [a for a in report.alignments if a.is_exact]
        assert exact
        reads_by_name = {}
        for alignment in exact[:50]:
            contig = genome.contigs[alignment.target_id]
            span = contig[alignment.target_start:alignment.target_end]
            assert len(span) == alignment.query_span

    def test_strand_recovery(self, perfect_dataset, small_config):
        genome, reads, report = run_small(perfect_dataset, small_config)
        truth = {r.name: r for r in reads}
        correct, total = 0, 0
        for alignment in report.alignments:
            read = truth[alignment.query_name]
            if read.contig_id < 0 or alignment.target_id != read.contig_id:
                continue
            total += 1
            if alignment.strand == read.strand:
                correct += 1
        assert total > 0
        assert correct / total > 0.9

    def test_deterministic_given_config(self, small_dataset, small_config):
        _, _, first = run_small(small_dataset, small_config)
        _, _, second = run_small(small_dataset, small_config)
        assert first.counters.reads_aligned == second.counters.reads_aligned
        assert first.counters.sw_calls == second.counters.sw_calls
        assert len(first.alignments) == len(second.alignments)

    def test_results_independent_of_rank_count(self, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        reports = [MerAligner(small_config).run(genome.contigs, reads, n_ranks=n)
                   for n in (1, 3, 5)]
        aligned = {r.counters.reads_aligned for r in reports}
        assert len(aligned) == 1
        names = [sorted({a.query_name for a in r.alignments}) for r in reports]
        assert names[0] == names[1] == names[2]


class TestOptimizationToggles:
    def test_without_optimizations_same_alignments(self, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        optimized = MerAligner(small_config).run(genome.contigs, reads, n_ranks=4)
        baseline = MerAligner(small_config.without_optimizations()).run(
            genome.contigs, reads, n_ranks=4)
        assert (optimized.counters.reads_aligned == baseline.counters.reads_aligned)
        assert baseline.counters.exact_path_hits == 0

    def test_exact_opt_reduces_sw_calls_and_lookups(self, small_dataset, small_config):
        genome, reads = small_dataset
        with_opt = MerAligner(small_config).run(genome.contigs, reads, n_ranks=4)
        without = MerAligner(small_config.with_(use_exact_match_optimization=False)
                             ).run(genome.contigs, reads, n_ranks=4)
        assert with_opt.counters.sw_calls < without.counters.sw_calls
        assert with_opt.counters.seed_lookups < without.counters.seed_lookups

    def test_aggregating_stores_reduce_messages(self, small_dataset, small_config):
        genome, reads = small_dataset
        few_reads = reads[:40]
        with_agg = MerAligner(small_config.with_(aggregation_buffer_size=64)).run(
            genome.contigs, few_reads, n_ranks=4)
        without = MerAligner(small_config.with_(use_aggregating_stores=False)).run(
            genome.contigs, few_reads, n_ranks=4)
        assert (with_agg.total_stats.atomics < without.total_stats.atomics)

    def test_caches_reduce_offnode_gets(self, small_dataset, small_config):
        genome, reads = small_dataset
        machine = EDISON_LIKE.with_cores_per_node(2)
        cached = MerAligner(small_config).run(genome.contigs, reads, n_ranks=4,
                                              machine=machine)
        uncached = MerAligner(small_config.with_(use_seed_index_cache=False,
                                                 use_target_cache=False)).run(
            genome.contigs, reads, n_ranks=4, machine=machine)
        assert cached.total_stats.off_node_ops < uncached.total_stats.off_node_ops
        assert cached.cache_stats["seed_index"].hits > 0

    def test_max_alignments_threshold_limits_work(self, small_config):
        # A highly repetitive target set: the same contig repeated many times.
        contig = "ACGTTGCA" * 40
        contigs = [contig] * 6
        reads = [ReadRecord(name=f"r{i}", sequence=contig[:60], quality="I" * 60)
                 for i in range(5)]
        unlimited = MerAligner(small_config.with_(max_alignments_per_seed=0,
                                                  use_exact_match_optimization=False,
                                                  try_reverse_complement=False)).run(
            contigs, reads, n_ranks=2)
        limited = MerAligner(small_config.with_(max_alignments_per_seed=2,
                                                use_exact_match_optimization=False,
                                                try_reverse_complement=False)).run(
            contigs, reads, n_ranks=2)
        assert limited.counters.sw_calls <= unlimited.counters.sw_calls
        assert limited.counters.candidates_skipped_threshold > 0

    def test_load_balancing_reduces_compute_imbalance(self, small_config):
        """The Table I scenario: reads grouped by genome region, where a whole
        region has no covering contig (those reads skip Smith-Waterman and are
        'fast'), creates compute imbalance that random permutation removes."""
        from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset, sample_reads
        import numpy as np
        spec = GenomeSpec(name="lb", genome_length=12000, n_contigs=1,
                          repeat_fraction=0.0)
        genome, _ = make_dataset(spec, ReadSetSpec(coverage=1, read_length=60), seed=3)
        # Only the first half of the genome is covered by a contig.
        contigs = [genome.genome[:6000]]
        rng = np.random.default_rng(5)
        grouped_reads = sample_reads(genome, ReadSetSpec(coverage=2, read_length=60,
                                                         grouped=True,
                                                         error_rate=0.03), rng)
        config = small_config.with_(use_exact_match_optimization=True)
        permuted = MerAligner(config.with_(permute_reads=True)).run(
            contigs, grouped_reads, n_ranks=8)
        grouped = MerAligner(config.with_(permute_reads=False)).run(
            contigs, grouped_reads, n_ranks=8)
        perm_summary = permuted.load_balance_summary()
        group_summary = grouped.load_balance_summary()
        perm_spread = perm_summary["compute_max"] - perm_summary["compute_min"]
        group_spread = group_summary["compute_max"] - group_summary["compute_min"]
        assert perm_spread < group_spread


class TestInputFormats:
    def test_fasta_and_fastq_paths(self, tmp_path, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        fasta = tmp_path / "contigs.fa"
        write_fasta(fasta, [(f"c{i}", seq) for i, seq in enumerate(genome.contigs)])
        fastq = tmp_path / "reads.fastq"
        write_fastq(fastq, reads[:50])
        report = MerAligner(small_config).run(fasta, fastq, n_ranks=2)
        assert report.counters.reads_processed == 50
        assert report.counters.aligned_fraction > 0.7

    def test_seqdb_path(self, tmp_path, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        seqdb = tmp_path / "reads.seqdb"
        records_to_seqdb(seqdb, reads[:30])
        report = MerAligner(small_config).run(genome.contigs, seqdb, n_ranks=2)
        assert report.counters.reads_processed == 30

    def test_invalid_inputs_raise(self, small_config):
        with pytest.raises(TypeError):
            MerAligner(small_config).run([123], [], n_ranks=1)
        with pytest.raises(TypeError):
            MerAligner(small_config).run(["ACGT" * 20], [42], n_ranks=1)


class TestEdgeCases:
    def test_reads_shorter_than_seed(self, small_config):
        contigs = ["ACGT" * 50]
        reads = [ReadRecord(name="short", sequence="ACGTAC", quality="IIIIII")]
        report = MerAligner(small_config).run(contigs, reads, n_ranks=1)
        assert report.counters.reads_processed == 1
        assert report.counters.reads_aligned == 0

    def test_empty_reads(self, small_config):
        report = MerAligner(small_config).run(["ACGT" * 50], [], n_ranks=2)
        assert report.counters.reads_processed == 0
        assert report.alignments == []

    def test_read_with_no_matching_seed(self, small_config):
        contigs = ["A" * 200]
        reads = [ReadRecord(name="alien", sequence="CGTACGTACGTACGTACGTACGTACG",
                            quality="I" * 26)]
        report = MerAligner(small_config).run(contigs, reads, n_ranks=1)
        assert report.counters.reads_aligned == 0

    def test_more_ranks_than_targets(self, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        report = MerAligner(small_config).run(genome.contigs, reads[:20], n_ranks=8)
        assert report.counters.reads_processed == 20
        assert report.counters.aligned_fraction > 0.5

    def test_single_rank_run(self, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        report = MerAligner(small_config).run(genome.contigs, reads[:20], n_ranks=1)
        assert report.counters.reads_processed == 20
