"""Tests for scoring schemes."""

import numpy as np
import pytest

from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme


class TestScoringScheme:
    def test_defaults_match_ssw(self):
        assert DEFAULT_SCORING.match == 2
        assert DEFAULT_SCORING.mismatch == 3
        assert DEFAULT_SCORING.gap_open == 5
        assert DEFAULT_SCORING.gap_extend == 2

    def test_score_pair(self):
        assert DEFAULT_SCORING.score_pair("A", "A") == 2
        assert DEFAULT_SCORING.score_pair("A", "C") == -3

    def test_substitution_matrix(self):
        matrix = DEFAULT_SCORING.substitution_matrix()
        assert matrix.shape == (4, 4)
        assert np.all(np.diag(matrix) == 2)
        off_diag = matrix[~np.eye(4, dtype=bool)]
        assert np.all(off_diag == -3)

    def test_profile_shape_and_values(self):
        profile = DEFAULT_SCORING.profile("ACGT")
        assert profile.shape == (4, 4)
        # profile[code, j]: aligning target base `code` with query[j]
        assert profile[0, 0] == 2      # A vs A
        assert profile[1, 0] == -3     # C vs A

    def test_max_score(self):
        assert DEFAULT_SCORING.max_score(100) == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=0)
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=-1)
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=1, gap_extend=2)

    def test_custom_scheme(self):
        scheme = ScoringScheme(match=1, mismatch=1, gap_open=2, gap_extend=1)
        assert scheme.score_pair("G", "G") == 1
        assert scheme.max_score(10) == 10
