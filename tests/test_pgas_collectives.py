"""Tests for driver-level collectives."""

import pytest

from repro.pgas.collectives import allreduce, broadcast, exchange_counts, gather
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


@pytest.fixture
def contexts():
    runtime = PgasRuntime(n_ranks=4, machine=EDISON_LIKE.with_cores_per_node(2))
    return runtime.contexts


class TestAllreduce:
    def test_sum(self, contexts):
        assert allreduce(contexts, [1, 2, 3, 4]) == 10

    def test_custom_op(self, contexts):
        assert allreduce(contexts, [1, 5, 2, 4], op=max) == 5

    def test_charges_every_rank(self, contexts):
        before = [ctx.stats.comm_time for ctx in contexts]
        allreduce(contexts, [1, 1, 1, 1])
        for ctx, prior in zip(contexts, before):
            assert ctx.stats.comm_time > prior

    def test_wrong_length_raises(self, contexts):
        with pytest.raises(ValueError):
            allreduce(contexts, [1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            allreduce([], [])


class TestBroadcast:
    def test_values(self, contexts):
        assert broadcast(contexts, "payload", root=1) == ["payload"] * 4

    def test_bad_root(self, contexts):
        with pytest.raises(IndexError):
            broadcast(contexts, 1, root=9)


class TestGather:
    def test_order_preserved(self, contexts):
        assert gather(contexts, [10, 11, 12, 13], root=0) == [10, 11, 12, 13]

    def test_root_pays_more(self, contexts):
        before = [ctx.stats.comm_time for ctx in contexts]
        gather(contexts, ["x" * 1000] * 4, root=2)
        deltas = [ctx.stats.comm_time - b for ctx, b in zip(contexts, before)]
        assert deltas[2] == max(deltas)

    def test_wrong_length_raises(self, contexts):
        with pytest.raises(ValueError):
            gather(contexts, [1])


class TestExchangeCounts:
    def test_transpose(self, contexts):
        counts = [[i * 10 + j for j in range(4)] for i in range(4)]
        received = exchange_counts(contexts, counts)
        for i in range(4):
            for j in range(4):
                assert received[j][i] == counts[i][j]

    def test_bad_shape_raises(self, contexts):
        with pytest.raises(ValueError):
            exchange_counts(contexts, [[1, 2], [3, 4]])
