"""Tests for FASTA / FASTQ / SAM text formats and record partitioning."""

import pytest

from repro.alignment.result import Alignment, CigarOp
from repro.dna.synthetic import ReadRecord
from repro.io.fasta import FastaRecord, read_fasta, write_fasta
from repro.io.fastq import FastqRecord, read_fastq, write_fastq
from repro.io.partition import block_partition, cyclic_partition, partition_records
from repro.io.sam import sam_header, write_sam


class TestFasta:
    def test_round_trip(self, tmp_path):
        records = [FastaRecord("contig1", "ACGT" * 30),
                   FastaRecord("contig2", "GGCC" * 10)]
        path = tmp_path / "targets.fa"
        write_fasta(path, records, line_width=50)
        loaded = read_fasta(path)
        assert loaded == records

    def test_round_trip_tuples(self, tmp_path):
        path = tmp_path / "t.fa"
        write_fasta(path, [("a", "ACGT"), ("b", "TTTT")])
        assert [(r.name, r.sequence) for r in read_fasta(path)] == [
            ("a", "ACGT"), ("b", "TTTT")]

    def test_multiline_and_lowercase(self, tmp_path):
        path = tmp_path / "t.fa"
        path.write_text(">x desc here\nacgt\nACGT\n\n>y\nTT\n")
        records = read_fasta(path)
        assert records[0] == FastaRecord("x", "ACGTACGT")
        assert records[1] == FastaRecord("y", "TT")

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n>x\nACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_empty_name_raises(self, tmp_path):
        path = tmp_path / "bad2.fa"
        path.write_text(">\nACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_invalid_record(self):
        with pytest.raises(ValueError):
            FastaRecord("", "ACGT")

    def test_invalid_line_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fa", [("a", "ACGT")], line_width=0)


class TestFastq:
    def test_round_trip(self, tmp_path):
        records = [FastqRecord("r1", "ACGT", "IIII"),
                   FastqRecord("r2", "GGTT", "##II")]
        path = tmp_path / "reads.fastq"
        write_fastq(path, records)
        assert read_fastq(path) == records

    def test_write_read_records(self, tmp_path):
        reads = [ReadRecord(name="r1", sequence="ACGT", quality="IIII")]
        path = tmp_path / "reads.fastq"
        write_fastq(path, reads)
        assert read_fastq(path)[0].sequence == "ACGT"

    def test_truncated_raises(self, tmp_path):
        path = tmp_path / "trunc.fastq"
        path.write_text("@r1\nACGT\n+\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("r1\nACGT\n+\nIIII\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_malformed_separator_raises(self, tmp_path):
        path = tmp_path / "bad2.fastq"
        path.write_text("@r1\nACGT\nX\nIIII\n")
        with pytest.raises(ValueError):
            read_fastq(path)

    def test_quality_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_to_read_round_trip(self):
        record = FastqRecord("r", "ACGT", "IIII")
        read = record.to_read()
        assert FastqRecord.from_read(read) == record


class TestPartition:
    def test_block_partition_covers_everything(self):
        n_items, n_parts = 23, 5
        covered = []
        for part in range(n_parts):
            start, count = block_partition(n_items, n_parts, part)
            covered.extend(range(start, start + count))
        assert covered == list(range(n_items))

    def test_block_sizes_differ_by_at_most_one(self):
        sizes = [block_partition(100, 7, p)[1] for p in range(7)]
        assert max(sizes) - min(sizes) <= 1

    def test_block_partition_empty(self):
        assert block_partition(0, 4, 2) == (0, 0)

    def test_block_partition_errors(self):
        with pytest.raises(ValueError):
            block_partition(10, 0, 0)
        with pytest.raises(IndexError):
            block_partition(10, 4, 4)
        with pytest.raises(ValueError):
            block_partition(-1, 4, 0)

    def test_cyclic_partition(self):
        assert cyclic_partition(7, 3, 0) == [0, 3, 6]
        assert cyclic_partition(7, 3, 2) == [2, 5]

    def test_cyclic_partition_errors(self):
        with pytest.raises(IndexError):
            cyclic_partition(5, 2, 2)

    def test_partition_records(self):
        parts = partition_records(list(range(10)), 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert sum(parts, []) == list(range(10))


class TestSam:
    def test_header(self):
        lines = sam_header(["c1", "c2"], [100, 200])
        assert lines[0].startswith("@HD")
        assert "@SQ\tSN:c1\tLN:100" in lines
        assert lines[-1].startswith("@PG")

    def test_header_validation(self):
        with pytest.raises(ValueError):
            sam_header(["c1"], [100, 200])
        with pytest.raises(ValueError):
            sam_header(["c1"], [-5])

    def test_write_sam(self, tmp_path):
        alignments = [
            Alignment(query_name="q1", target_id=0, score=10, query_start=0,
                      query_end=5, target_start=3, target_end=8,
                      cigar=[(5, CigarOp.MATCH)]),
            Alignment(query_name="q2", target_id=99, score=4, query_start=0,
                      query_end=2, target_start=0, target_end=2),
        ]
        path = tmp_path / "out.sam"
        written = write_sam(path, alignments, ["c1"], [50])
        assert written == 2
        content = path.read_text().splitlines()
        body = [line for line in content if not line.startswith("@")]
        assert body[0].split("\t")[2] == "c1"
        assert body[1].split("\t")[2] == "target99"  # unknown target id fallback


class TestGzipTransparency:
    """Satellite: ``.gz`` inputs are sniffed by suffix and decompressed."""

    def test_read_fasta_gz(self, tmp_path):
        import gzip
        records = [FastaRecord("contig1", "ACGT" * 30),
                   FastaRecord("contig2", "GGCCTTAA")]
        plain = tmp_path / "targets.fa"
        write_fasta(plain, records)
        gz = tmp_path / "targets.fasta.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert read_fasta(gz) == records

    def test_read_fastq_gz(self, tmp_path):
        import gzip
        records = [FastqRecord("r1", "ACGTACGT", "IIIIIIII"),
                   FastqRecord("r2", "TTTT", "##!!")]
        plain = tmp_path / "reads.fastq"
        write_fastq(plain, records)
        gz = tmp_path / "reads.fastq.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert read_fastq(gz) == records

    def test_plain_files_unaffected(self, tmp_path):
        path = tmp_path / "t.fa"
        write_fasta(path, [("a", "ACGT")])
        assert [(r.name, r.sequence) for r in read_fasta(path)] == [("a", "ACGT")]

    def test_gz_suffix_without_gzip_content_raises(self, tmp_path):
        path = tmp_path / "fake.fasta.gz"
        path.write_text(">a\nACGT\n")
        with pytest.raises(OSError):
            read_fasta(path)

    def test_misnamed_gzip_fasta_opens_via_magic_bytes(self, tmp_path):
        """Satellite bugfix: a gzipped file without the .gz suffix is sniffed
        by its magic bytes instead of blowing up mid-parse."""
        import gzip
        records = [FastaRecord("contig1", "ACGT" * 20)]
        plain = tmp_path / "targets.fa"
        write_fasta(plain, records)
        misnamed = tmp_path / "misnamed.fasta"  # gzip bytes, plain suffix
        misnamed.write_bytes(gzip.compress(plain.read_bytes()))
        assert read_fasta(misnamed) == records

    def test_misnamed_gzip_fastq_opens_via_magic_bytes(self, tmp_path):
        import gzip
        records = [FastqRecord("r1", "ACGTACGT", "IIIIIIII")]
        plain = tmp_path / "reads.fastq"
        write_fastq(plain, records)
        misnamed = tmp_path / "misnamed.fastq"
        misnamed.write_bytes(gzip.compress(plain.read_bytes()))
        assert read_fastq(misnamed) == records

    def test_magic_sniff_does_not_consume_plain_stream(self, tmp_path):
        """The two-byte probe reopens the file; a plain file parses fully."""
        path = tmp_path / "x.fa"
        path.write_text(">\x1fweird\nACGT\n")  # first byte is not 0x1f8b
        # Not valid gzip; must be parsed as plain text (header name kept).
        records = read_fasta(path)
        assert records[0].sequence == "ACGT"

    def test_pipeline_accepts_gzipped_inputs(self, tmp_path, small_dataset,
                                             small_config):
        """End to end: a gzipped FASTA + FASTQ align identically to plain."""
        import gzip

        from repro.core.pipeline import MerAligner
        from repro.pgas.cost_model import EDISON_LIKE

        genome, reads = small_dataset
        reads = reads[:20]
        fa = tmp_path / "contigs.fa"
        write_fasta(fa, [(f"c{i}", seq) for i, seq in enumerate(genome.contigs)])
        fq = tmp_path / "reads.fastq"
        write_fastq(fq, reads)
        fa_gz = tmp_path / "contigs.fasta.gz"
        fa_gz.write_bytes(gzip.compress(fa.read_bytes()))
        fq_gz = tmp_path / "reads.fastq.gz"
        fq_gz.write_bytes(gzip.compress(fq.read_bytes()))

        aligner = MerAligner(small_config)
        plain = aligner.run(fa, fq, n_ranks=2, machine=EDISON_LIKE)
        packed = aligner.run(fa_gz, fq_gz, n_ranks=2, machine=EDISON_LIKE)
        assert [a.to_sam_line("c") for a in packed.alignments] == \
            [a.to_sam_line("c") for a in plain.alignments]
