"""Tests for the per-node software caches."""

import pytest

from repro.hashtable.cache import CacheStats, SoftwareCache
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


@pytest.fixture
def runtime():
    # 4 ranks on 2 nodes.
    return PgasRuntime(n_ranks=4, machine=EDISON_LIKE.with_cores_per_node(2))


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        merged = CacheStats(hits=1, misses=2).merge(CacheStats(hits=3, evictions=1))
        assert merged.hits == 4 and merged.misses == 2 and merged.evictions == 1


class TestSoftwareCache:
    def test_miss_then_hit(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        ctx = runtime.contexts[0]
        hit, _ = cache.get(ctx, "k")
        assert not hit
        cache.put(ctx, "k", "value", 16)
        hit, value = cache.get(ctx, "k")
        assert hit and value == "value"

    def test_hits_returns_identical_data(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        ctx = runtime.contexts[0]
        payload = {"a": [1, 2, 3]}
        cache.put(ctx, "k", payload, 32)
        _, value = cache.get(ctx, "k")
        assert value is payload

    def test_per_node_isolation(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        ctx_node0 = runtime.contexts[0]
        ctx_node1 = runtime.contexts[2]
        cache.put(ctx_node0, "k", 1, 8)
        hit_same_node, _ = cache.get(runtime.contexts[1], "k")
        hit_other_node, _ = cache.get(ctx_node1, "k")
        assert hit_same_node
        assert not hit_other_node

    def test_lru_eviction_by_bytes(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=100)
        ctx = runtime.contexts[0]
        cache.put(ctx, "a", "A", 60)
        cache.put(ctx, "b", "B", 60)  # evicts "a"
        assert cache.get(ctx, "a")[0] is False
        assert cache.get(ctx, "b")[0] is True
        assert cache.node_stats(0).evictions == 1

    def test_lru_order_updated_on_hit(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=100)
        ctx = runtime.contexts[0]
        cache.put(ctx, "a", "A", 40)
        cache.put(ctx, "b", "B", 40)
        cache.get(ctx, "a")          # refresh "a"
        cache.put(ctx, "c", "C", 40)  # should evict "b", not "a"
        assert cache.get(ctx, "a")[0] is True
        assert cache.get(ctx, "b")[0] is False

    def test_object_larger_than_capacity_not_cached(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=10)
        ctx = runtime.contexts[0]
        cache.put(ctx, "big", "X", 100)
        assert cache.get(ctx, "big")[0] is False

    def test_zero_capacity_cache_never_hits(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=0)
        ctx = runtime.contexts[0]
        cache.put(ctx, "k", 1, 8)
        assert cache.get(ctx, "k")[0] is False
        assert cache.total_stats().hits == 0

    def test_negative_capacity_raises(self, runtime):
        with pytest.raises(ValueError):
            SoftwareCache(runtime, capacity_bytes_per_node=-1)

    def test_hit_charges_on_node_access(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        ctx = runtime.contexts[0]
        cache.put(ctx, "k", 1, 8)
        comm_before = ctx.stats.comm_time
        on_node_before = ctx.stats.on_node_ops
        cache.get(ctx, "k")
        assert ctx.stats.comm_time > comm_before
        assert ctx.stats.on_node_ops == on_node_before + 1

    def test_update_existing_key_replaces_bytes(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=100)
        ctx = runtime.contexts[0]
        cache.put(ctx, "k", "v1", 80)
        cache.put(ctx, "k", "v2", 30)
        assert cache.get(ctx, "k")[1] == "v2"
        # There must be room left for another 60-byte object.
        cache.put(ctx, "other", "o", 60)
        assert cache.get(ctx, "other")[0] is True

    def test_clear_keeps_statistics(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        ctx = runtime.contexts[0]
        cache.put(ctx, "k", 1, 8)
        cache.get(ctx, "k")
        cache.clear()
        assert cache.get(ctx, "k")[0] is False
        assert cache.total_stats().hits == 1

    def test_total_stats_aggregates_nodes(self, runtime):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1024)
        cache.put(runtime.contexts[0], "a", 1, 8)
        cache.put(runtime.contexts[2], "b", 2, 8)
        cache.get(runtime.contexts[0], "a")
        cache.get(runtime.contexts[2], "b")
        total = cache.total_stats()
        assert total.hits == 2
        assert total.insertions == 2
