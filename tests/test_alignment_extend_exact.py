"""Tests for seed extension, the exact-match fast path, and result records."""

import pytest

from repro.alignment.exact import exact_match_at, try_exact_match
from repro.alignment.extend import SeedHit, extend_seed_hit
from repro.alignment.result import (
    Alignment,
    CigarOp,
    alignment_identity,
    cigar_to_string,
)
from repro.alignment.scoring import DEFAULT_SCORING
from repro.dna.sequence import random_dna


class TestExactMatch:
    def test_exact_match_at_true(self):
        assert exact_match_at("CGTA", "AACGTAAA", 2)

    def test_exact_match_at_false(self):
        assert not exact_match_at("CGTA", "AACGTAAA", 1)

    def test_out_of_bounds(self):
        assert not exact_match_at("CGTA", "AACG", 2)
        assert not exact_match_at("CGTA", "AACGTAAA", -1)

    def test_try_exact_match_success(self):
        target = "TTTACGTACGTTT"
        query = "ACGTACG"
        # seed "CGTA" is at query offset 1 and target offset 4
        alignment = try_exact_match("read1", query, 3, target,
                                    seed_offset_in_query=1,
                                    seed_offset_in_target=4)
        assert alignment is not None
        assert alignment.is_exact
        assert alignment.target_start == 3
        assert alignment.target_end == 3 + len(query)
        assert alignment.score == DEFAULT_SCORING.max_score(len(query))
        assert alignment.identity == 1.0
        assert alignment.cigar == [(len(query), CigarOp.MATCH)]

    def test_try_exact_match_failure_returns_none(self):
        target = "TTTACGTACGTTT"
        assert try_exact_match("r", "ACGAACG", 0, target, 1, 4) is None

    def test_try_exact_match_at_boundary(self):
        target = "ACGTACGT"
        assert try_exact_match("r", "ACGT", 0, target, 0, 0) is not None
        assert try_exact_match("r", "ACGT", 0, target, 0, 4) is not None
        # would overhang the end
        assert try_exact_match("r", "ACGTA", 0, target, 0, 4) is None


class TestSeedHit:
    def test_expected_target_start(self):
        hit = SeedHit(target_id=0, target_offset=10, query_offset=3, seed_length=5)
        assert hit.expected_target_start == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedHit(target_id=0, target_offset=0, query_offset=0, seed_length=0)
        with pytest.raises(ValueError):
            SeedHit(target_id=0, target_offset=-1, query_offset=0, seed_length=3)
        with pytest.raises(ValueError):
            SeedHit(target_id=0, target_offset=0, query_offset=0, seed_length=3,
                    strand="?")


class TestExtendSeedHit:
    def test_perfect_read_recovers_position(self, rng):
        target = random_dna(300, rng=rng)
        start = 100
        query = target[start:start + 60]
        hit = SeedHit(target_id=5, target_offset=start + 10, query_offset=10,
                      seed_length=21)
        alignment, cells = extend_seed_hit("read", query, target, hit)
        assert cells > 0
        assert alignment.target_id == 5
        assert alignment.score == DEFAULT_SCORING.max_score(len(query))
        assert alignment.target_start == start
        assert alignment.target_end == start + len(query)

    def test_detailed_mode_produces_cigar_and_identity(self, rng):
        target = random_dna(200, rng=rng)
        query = target[50:110]
        hit = SeedHit(target_id=0, target_offset=50, query_offset=0, seed_length=21)
        alignment, _ = extend_seed_hit("read", query, target, hit, detailed=True)
        assert alignment.cigar_string == f"{len(query)}M"
        assert alignment.identity == pytest.approx(1.0)

    def test_read_with_mismatch_still_aligns(self, rng):
        target = random_dna(200, rng=rng)
        fragment = target[60:120]
        query = fragment[:30] + ("A" if fragment[30] != "A" else "C") + fragment[31:]
        hit = SeedHit(target_id=0, target_offset=60, query_offset=0, seed_length=20)
        alignment, _ = extend_seed_hit("read", query, target, hit)
        assert alignment.score > DEFAULT_SCORING.max_score(len(query) // 2)

    def test_window_at_target_edge(self, rng):
        target = random_dna(80, rng=rng)
        query = target[:40]
        hit = SeedHit(target_id=0, target_offset=0, query_offset=0, seed_length=15)
        alignment, _ = extend_seed_hit("read", query, target, hit)
        assert alignment.target_start == 0

    def test_empty_window(self):
        hit = SeedHit(target_id=0, target_offset=0, query_offset=0, seed_length=3)
        alignment, cells = extend_seed_hit("read", "ACGT", "", hit)
        assert alignment.score == 0
        assert cells == 0


class TestAlignmentRecord:
    def test_spans(self):
        alignment = Alignment(query_name="q", target_id=1, score=10,
                              query_start=2, query_end=12,
                              target_start=100, target_end=110)
        assert alignment.query_span == 10
        assert alignment.target_span == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            Alignment(query_name="q", target_id=0, score=0, query_start=5,
                      query_end=2, target_start=0, target_end=0)
        with pytest.raises(ValueError):
            Alignment(query_name="q", target_id=0, score=0, query_start=0,
                      query_end=0, target_start=0, target_end=0, strand="x")

    def test_cigar_string(self):
        assert cigar_to_string([(5, CigarOp.MATCH), (2, CigarOp.INSERTION)]) == "5M2I"

    def test_identity_helper(self):
        assert alignment_identity("ACGT", "ACGT") == 1.0
        assert alignment_identity("ACGT", "ACGA") == 0.75
        assert alignment_identity("", "") == 0.0
        with pytest.raises(ValueError):
            alignment_identity("AC", "A")

    def test_sam_line(self):
        alignment = Alignment(query_name="q1", target_id=0, score=20,
                              query_start=0, query_end=10,
                              target_start=5, target_end=15, strand="-",
                              cigar=[(10, CigarOp.MATCH)], is_exact=True)
        fields = alignment.to_sam_fields("contig1")
        assert fields[0] == "q1"
        assert fields[1] == "16"           # reverse strand flag
        assert fields[2] == "contig1"
        assert fields[3] == "6"            # 1-based position
        assert fields[5] == "10M"
        assert fields[-1] == "AS:i:20"
        assert "\t".join(fields) == alignment.to_sam_line("contig1")
