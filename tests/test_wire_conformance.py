"""Wire-protocol conformance and fault injection for BOTH connection
front-ends.

The service has two front-ends -- the thread-per-connection
``AlignmentServer`` and the event-loop ``AsyncAlignmentServer`` (the
``api.serve`` default) -- that must speak **byte-identical** protocol.  This
module drives both through one raw-socket harness (:class:`WireTester`, no
client-library smarts, so it can send garbage, half-close mid-payload, or
vanish with an RST) and pins:

* the fuzz matrix: every malformed command earns a single ``ERR`` with the
  exact shared message, increments ``server_errors_total{verb}``, and leaves
  the connection usable (or closes it cleanly when framing is unrecoverable);
* mid-stream fault injection: disconnects between ``CHUNK`` frames,
  half-closes mid-payload, and stalled readers release every admission slot
  and ticket -- the ``server_active_connections``, ``gateway_pending`` and
  ``stream_channel_depth`` gauges all return to zero, and concurrent clients
  complete byte-identically throughout;
* the ``--client-timeout`` slow-loris guard: idle or stalled connections are
  reaped and counted in ``server_client_timeouts_total``, never replied to;
* the served byte-identity matrix: one-shot and streamed responses from the
  asyncio front-end match the thread front-end and the offline render, for
  all four workloads across every backend with bulk lookups on and off.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.gateway import AlignmentGateway
from repro.io.fastq import FastqRecord
from repro.pgas.cost_model import EDISON_LIKE
from repro.service import DEFAULT_FRONTEND, FRONTENDS
from repro.service.protocol import fastq_payload
from repro.service.scheduler import RequestScheduler

MACHINE = EDISON_LIKE.with_cores_per_node(2)
FRONTEND_NAMES = tuple(sorted(FRONTENDS))   # ("async", "thread")
BACKENDS = ("cooperative", "threaded", "process")
WORKLOADS = ("align", "paired", "count", "screen")
STREAM_CHUNK_SIZES = (1, 7, 4096)


# ---------------------------------------------------------------------------
# The raw-socket harness
# ---------------------------------------------------------------------------


class WireTester:
    """A raw-socket driver of the line protocol.

    Deliberately *not* the ``SocketAlignmentClient``: conformance tests need
    to send malformed bytes, half-close mid-payload, stall without reading,
    and abort with an RST -- everything a well-behaved client never does.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 rcvbuf: int | None = None) -> None:
        self.sock = socket.socket()
        if rcvbuf is not None:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        self.sock.settimeout(timeout)
        self.sock.connect((host, port))
        self.rfile = self.sock.makefile("rb")

    # -- sending --------------------------------------------------------------

    def send(self, data: bytes) -> "WireTester":
        self.sock.sendall(data)
        return self

    def send_line(self, text: str) -> "WireTester":
        return self.send(text.encode("utf-8") + b"\n")

    # -- reading --------------------------------------------------------------

    def read_line(self) -> bytes:
        return self.rfile.readline()

    def read_status(self) -> str:
        return self.read_line().decode("utf-8").rstrip("\n")

    def read_exact(self, n_bytes: int) -> bytes:
        body = self.rfile.read(n_bytes)
        assert len(body) == n_bytes, (
            f"short read: {len(body)} of {n_bytes} bytes")
        return body

    def read_ok_payload(self) -> bytes:
        status = self.read_status()
        assert status.startswith("OK "), f"expected OK, got {status!r}"
        return self.read_exact(int(status.split()[1]))

    def roundtrip_raw(self, command: str, payload: bytes = b"") -> bytes:
        """One command's full response (status line + any body), raw."""
        self.send(command.encode("utf-8") + b"\n" + payload)
        status = self.read_line()
        body = b""
        if status.startswith((b"OK ", b"CHUNK ")):
            body = self.read_exact(int(status.split()[1]))
        return status + body

    def read_stream_reply(self) -> tuple[list[bytes], str]:
        """Every ``CHUNK`` part of a streamed reply plus the final line."""
        parts = []
        while True:
            status = self.read_status()
            if status.startswith("CHUNK "):
                parts.append(self.read_exact(int(status.split()[1])))
            else:
                return parts, status

    def expect_err(self, command: str, payload: bytes = b"") -> str:
        self.send(command.encode("utf-8") + b"\n" + payload)
        status = self.read_status()
        assert status.startswith("ERR "), f"expected ERR, got {status!r}"
        return status

    # -- misbehaving ----------------------------------------------------------

    def half_close(self) -> "WireTester":
        """Shut down the write side (the server sees EOF, can still reply)."""
        self.sock.shutdown(socket.SHUT_WR)
        return self

    def abort(self) -> None:
        """Vanish abruptly: SO_LINGER 0 turns close() into an RST.

        Both the makefile handle and the socket must go -- the fd (and so
        the reset) is only released once the last reference closes.
        """
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                             struct.pack("ii", 1, 0))
        try:
            self.rfile.close()
        except OSError:
            pass
        self.sock.close()

    def close(self) -> None:
        try:
            self.rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WireTester":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Shared stack and servers
# ---------------------------------------------------------------------------


def _config(bulk: bool = True) -> AlignerConfig:
    return AlignerConfig(seed_length=21, fragment_length=600,
                         seed_cache_bytes_per_node=256 * 1024,
                         target_cache_bytes_per_node=256 * 1024,
                         use_bulk_lookups=bulk, lookup_batch_size=16)


def _make_session(backend: str = "cooperative", bulk: bool = True):
    spec = GenomeSpec(name="wire", genome_length=5000, n_contigs=3,
                      repeat_fraction=0.02, min_contig_length=200)
    read_spec = ReadSetSpec(coverage=1.2, read_length=60, error_rate=0.01,
                            reverse_strand_fraction=0.5)
    genome, reads = make_dataset(spec, read_spec, seed=13)
    names = [f"contig{i}" for i in range(len(genome.contigs))]
    session = MerAligner(_config(bulk)).prepare(
        genome.contigs, n_ranks=4, machine=MACHINE, backend=backend,
        target_names=names)
    records = [FastqRecord(name=f"r{i:03d}", sequence=read.sequence,
                           quality="I" * len(read.sequence))
               for i, read in enumerate(reads)]
    return session, records


def _start_server(frontend: str, scheduler=None, gateway=None, **kwargs):
    server = FRONTENDS[frontend](scheduler, port=0, gateway=gateway, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name=f"wire-{frontend}")
    thread.start()
    return server, thread


def _stop_server(server, thread) -> None:
    server.shutdown()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "serve thread failed to exit"


def _listen_sockets(server):
    """The listening socket(s) of either front-end (accepted connections
    inherit their options, e.g. a shrunken ``SO_SNDBUF``)."""
    raw = getattr(server._server, "socket", None)
    if raw is not None:
        return [raw]
    return list(server._server.sockets)


def _await_zero(named_getters: dict, timeout: float = 15.0) -> None:
    """Poll gauges until every one reads zero (fault paths drain async)."""
    deadline = time.monotonic() + timeout
    while True:
        values = {name: getter() for name, getter in named_getters.items()}
        if all(value == 0 for value in values.values()):
            return
        if time.monotonic() > deadline:
            pytest.fail(f"gauges did not drain to zero: {values}")
        time.sleep(0.02)


def _gauge_getters(server) -> dict:
    """The gauges every fault case must drain back to zero."""
    metrics = server.metrics
    return {name: (lambda gauge=metrics.gauge(name): gauge.value)
            for name in ("server_active_connections", "gateway_pending",
                         "stream_channel_depth")}


@pytest.fixture(scope="module")
def wire_stack():
    """One resident session + gateway shared by every conformance server."""
    session, records = _make_session()
    scheduler = RequestScheduler(session, max_wait_s=0.005)
    gateway = AlignmentGateway(session, scheduler)
    try:
        yield session, scheduler, gateway, records
    finally:
        gateway.close()


@pytest.fixture(scope="module", params=FRONTEND_NAMES)
def served(request, wire_stack):
    """One running gateway-backed server per front-end."""
    _session, scheduler, gateway, records = wire_stack
    server, thread = _start_server(request.param, scheduler, gateway=gateway,
                                   stream_channel_capacity=4,
                                   stream_max_inflight=2)
    try:
        yield request.param, server, records
    finally:
        _stop_server(server, thread)


@pytest.fixture(scope="module")
def both_served(wire_stack):
    """Both front-ends over the same stack, for byte-identity comparisons."""
    _session, scheduler, gateway, records = wire_stack
    servers = {}
    threads = []
    for frontend in FRONTEND_NAMES:
        server, thread = _start_server(frontend, scheduler, gateway=gateway)
        servers[frontend] = server
        threads.append((server, thread))
    try:
        yield servers, records
    finally:
        for server, thread in threads:
            _stop_server(server, thread)


# ---------------------------------------------------------------------------
# The fuzz matrix (satellite 1)
# ---------------------------------------------------------------------------

#: (id, command, verb label, expected ERR line).  ``None`` expectation means
#: prefix-match on ``ERR `` only (message embeds environment specifics).
FUZZ_CASES = [
    ("unknown-verb", "BOGUS",
     "BOGUS", "ERR unknown command 'BOGUS'"),
    ("unknown-verb-args", "FROBNICATE 12 fast",
     "FROBNICATE", "ERR unknown command 'FROBNICATE'"),
    ("align-no-count", "ALIGN",
     "ALIGN", "ERR usage: ALIGN <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("align-word-count", "ALIGN seven",
     "ALIGN", "ERR usage: ALIGN <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("align-negative-count", "ALIGN -3",
     "ALIGN", "ERR usage: ALIGN <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("align-float-count", "ALIGN 2.5",
     "ALIGN", "ERR usage: ALIGN <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("count-no-count", "COUNT",
     "COUNT", "ERR usage: COUNT <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("screen-no-count", "SCREEN nope",
     "SCREEN", "ERR usage: SCREEN <n_reads> [INDEX=<name>] [TENANT=<name>]"),
    ("paired-odd-count", "PAIRED 3",
     "PAIRED", "ERR PAIRED needs an even interleaved read count, got 3"),
    ("align-unknown-option", "ALIGN 2 FROB=x",
     "ALIGN", "ERR unknown ALIGN option 'FROB=x' "
              "(supported: INDEX=, TENANT=)"),
    ("align-malformed-option", "ALIGN 2 INDEX",
     "ALIGN", "ERR malformed ALIGN option 'INDEX' "
              "(expected INDEX=<name> or TENANT=<name>)"),
    ("metrics-bad-arg", "METRICS JUNK",
     "METRICS", "ERR usage: METRICS [PROM] (got METRICS 'JUNK')"),
    ("evict-usage", "EVICT",
     "EVICT", "ERR usage: EVICT <name>"),
    ("register-usage", "REGISTER onlyname",
     "REGISTER", "ERR usage: REGISTER <name> <fasta-path>"),
    ("garbage-bytes", "\x07\x01\x02garbage",
     None, None),
]


class TestFuzzMatrix:
    @pytest.mark.parametrize(("command", "verb", "expected"),
                             [case[1:] for case in FUZZ_CASES],
                             ids=[case[0] for case in FUZZ_CASES])
    def test_single_err_connection_usable_counter_bumped(
            self, served, command, verb, expected):
        _frontend, server, _records = served
        if verb is None:
            verb = command.split()[0].upper()
        errors = server.metrics.counter("server_errors_total", verb=verb)
        before = errors.value
        with WireTester(server.host, server.port) as wire:
            status = wire.expect_err(command)
            if expected is not None:
                assert status == expected
            # exactly one ERR, nothing queued behind it, and the connection
            # stays usable:
            assert wire.roundtrip_raw("PING") == b"OK 0\n"
        assert errors.value == before + 1

    def test_empty_lines_are_skipped(self, served):
        _frontend, server, _records = served
        with WireTester(server.host, server.port) as wire:
            wire.send(b"\n\r\n\n")
            assert wire.roundtrip_raw("PING") == b"OK 0\n"

    def test_malformed_fastq_payload_leaves_connection_usable(self, served):
        """Payloads are consumed whole before validation: after the ERR no
        stale FASTQ line can be misread as a command."""
        _frontend, server, _records = served
        bad = b"Xnot-a-header\nACGT\n+\nIIII\n"
        with WireTester(server.host, server.port) as wire:
            status = wire.expect_err("ALIGN 1", bad)
            assert status == "ERR malformed FASTQ header: 'Xnot-a-header'"
            status = wire.expect_err(
                "ALIGN 1", b"@r1\nACGT\n*\nIIII\n")
            assert status == "ERR malformed FASTQ separator: '*'"
            status = wire.expect_err(
                "ALIGN 1", b"@r1\nACGTT\n+\nIIII\n")
            assert status == "ERR sequence/quality length mismatch for '@r1'"
            assert wire.roundtrip_raw("PING") == b"OK 0\n"

    def test_unknown_index_errs_and_connection_usable(self, served):
        _frontend, server, records = served
        payload = fastq_payload(records[:1])
        with WireTester(server.host, server.port) as wire:
            status = wire.expect_err("ALIGN 1 INDEX=nosuch", payload)
            assert status.startswith("ERR KeyError: ")
            assert "unknown index 'nosuch'" in status
            assert wire.roundtrip_raw("PING") == b"OK 0\n"

    def test_huge_read_count_truncated_payload(self, served):
        """A huge declared count cannot wedge the server: EOF mid-payload is
        a single ERR and a clean close."""
        _frontend, server, _records = served
        with WireTester(server.host, server.port) as wire:
            wire.send_line("ALIGN 99999999").half_close()
            assert wire.read_status() == (
                "ERR truncated FASTQ payload (0 of 399999996 lines received)")
            assert wire.read_line() == b""   # server closed after our EOF
        _await_zero(_gauge_getters(server))

    def test_err_replies_byte_identical_across_frontends(self, both_served):
        servers, _records = both_served
        for case_id, command, _verb, _expected in FUZZ_CASES:
            replies = {}
            for frontend, server in servers.items():
                with WireTester(server.host, server.port) as wire:
                    replies[frontend] = wire.roundtrip_raw(command)
            assert replies["thread"] == replies["async"], case_id
            assert replies["thread"].startswith(b"ERR "), case_id


# ---------------------------------------------------------------------------
# Mid-stream fault injection (satellite 2)
# ---------------------------------------------------------------------------


class TestStreamFaults:
    def test_disconnect_between_chunks_releases_everything(self, served):
        _frontend, server, records = served
        chunk = records[:4]
        with WireTester(server.host, server.port) as wire:
            wire.send_line("ALIGNSTREAM")
            wire.send_line(f"CHUNK {len(chunk)}").send(fastq_payload(chunk))
            wire.abort()    # RST between frames, mid-stream
        _await_zero(_gauge_getters(server))

    def test_half_close_mid_payload_single_err(self, served):
        _frontend, server, records = served
        chunk = records[:4]
        payload = fastq_payload(chunk)
        half = payload[:len(payload) // 2]
        with WireTester(server.host, server.port) as wire:
            wire.send_line("ALIGNSTREAM")
            wire.send_line(f"CHUNK {len(chunk)}").send(half).half_close()
            parts, final = wire.read_stream_reply()
            assert final.startswith("ERR truncated FASTQ payload")
            assert wire.read_line() == b""   # stream faults close the conn
        _await_zero(_gauge_getters(server))

    def test_bad_stream_frame_errs_and_closes(self, served):
        _frontend, server, records = served
        errors = server.metrics.counter("server_errors_total",
                                        verb="ALIGNSTREAM")
        before = errors.value
        with WireTester(server.host, server.port) as wire:
            wire.send_line("ALIGNSTREAM")
            wire.send_line("CHUNKX 4")
            parts, final = wire.read_stream_reply()
            assert parts == []
            assert final == "ERR expected CHUNK <n_reads> or END, got 'CHUNKX 4'"
            assert wire.read_line() == b""
        assert errors.value == before + 1
        _await_zero(_gauge_getters(server))

    def test_concurrent_client_unaffected_by_faulting_stream(self, served):
        """A stream dying mid-flight must not perturb a well-behaved peer:
        its response stays byte-identical to a quiet-server run."""
        _frontend, server, records = served
        reads = records[:6]
        payload = fastq_payload(reads)
        with WireTester(server.host, server.port) as wire:
            reference = wire.roundtrip_raw(f"ALIGN {len(reads)}", payload)
        assert reference.startswith(b"OK ")

        faulty = WireTester(server.host, server.port)
        faulty.send_line("ALIGNSTREAM")
        faulty.send_line("CHUNK 4").send(fastq_payload(records[:4]))
        try:
            with WireTester(server.host, server.port) as wire:
                assert wire.roundtrip_raw(
                    f"ALIGN {len(reads)}", payload) == reference
            faulty.abort()
        except BaseException:
            faulty.close()
            raise
        with WireTester(server.host, server.port) as wire:
            assert wire.roundtrip_raw(
                f"ALIGN {len(reads)}", payload) == reference
        _await_zero(_gauge_getters(server))

    def test_abort_before_oneshot_payload(self, served):
        """An RST racing a one-shot payload read is swallowed cleanly (the
        pre-fix server leaked ConnectionResetError through handle_error)."""
        _frontend, server, _records = served
        wire = WireTester(server.host, server.port)
        wire.send_line("ALIGN 4")
        wire.abort()
        _await_zero(_gauge_getters(server))
        with WireTester(server.host, server.port) as probe:
            assert probe.roundtrip_raw("PING") == b"OK 0\n"


# ---------------------------------------------------------------------------
# The slow-loris guard (satellite 3) and stalled readers
# ---------------------------------------------------------------------------


@pytest.fixture(params=FRONTEND_NAMES)
def timeout_served(request, wire_stack):
    """A dedicated server per test with the client timeout armed and
    deliberately tiny send buffers (so stalled readers trip it fast)."""
    _session, scheduler, gateway, records = wire_stack
    server, thread = _start_server(request.param, scheduler, gateway=gateway,
                                   client_timeout=1.0)
    for sock in _listen_sockets(server):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
    try:
        yield request.param, server, records
    finally:
        _stop_server(server, thread)


class TestClientTimeout:
    def test_slow_loris_is_reaped_and_counted(self, timeout_served):
        _frontend, server, _records = timeout_served
        reaped = server.metrics.counter("server_client_timeouts_total")
        before = reaped.value
        with WireTester(server.host, server.port, timeout=15.0) as wire:
            wire.send(b"ALI")          # a trickle, never a full command
            assert wire.read_line() == b""   # closed without any reply
        assert reaped.value == before + 1
        _await_zero(_gauge_getters(server))

    def test_mid_payload_stall_is_reaped(self, timeout_served):
        _frontend, server, records = timeout_served
        reaped = server.metrics.counter("server_client_timeouts_total")
        before = reaped.value
        payload = fastq_payload(records[:4])
        with WireTester(server.host, server.port, timeout=15.0) as wire:
            wire.send_line("ALIGN 4").send(payload[:len(payload) // 2])
            assert wire.read_line() == b""
        assert reaped.value == before + 1
        _await_zero(_gauge_getters(server))

    def test_stalled_reader_on_streamed_reply_is_reaped(self, timeout_served):
        """A client that streams requests but never reads the replies: the
        write side stalls (tiny buffers), the timeout reaps it, and every
        ticket/admission slot is released."""
        _frontend, server, records = timeout_served
        reaped = server.metrics.counter("server_client_timeouts_total")
        before = reaped.value
        # ~500 reads of SAM (~23 KiB) dwarfs the shrunken buffers.
        reads = [FastqRecord(name=f"s{i:04d}",
                             sequence=records[i % len(records)].sequence,
                             quality=records[i % len(records)].quality)
                 for i in range(500)]
        wire = WireTester(server.host, server.port, timeout=60.0, rcvbuf=4096)
        try:
            wire.send_line("ALIGNSTREAM")
            for start in range(0, len(reads), 50):
                chunk = reads[start:start + 50]
                wire.send_line(f"CHUNK {len(chunk)}")
                wire.send(fastq_payload(chunk))
            wire.send_line("END")
            deadline = time.monotonic() + 120.0
            while reaped.value == before:
                assert time.monotonic() < deadline, \
                    "stalled reader was never reaped"
                time.sleep(0.05)
        finally:
            wire.close()
        assert reaped.value == before + 1
        _await_zero(_gauge_getters(server), timeout=30.0)

    def test_peer_completes_while_loris_stalls(self, timeout_served):
        """The reap is per-connection: a concurrent well-behaved client is
        served normally, byte-identical, while the loris idles."""
        _frontend, server, records = timeout_served
        payload = fastq_payload(records[:6])
        loris = WireTester(server.host, server.port, timeout=15.0)
        loris.send(b"PI")    # never finishes the command
        try:
            with WireTester(server.host, server.port) as wire:
                first = wire.roundtrip_raw("ALIGN 6", payload)
                assert first.startswith(b"OK ")
                assert wire.roundtrip_raw("ALIGN 6", payload) == first
            assert loris.read_line() == b""   # ...and then the reap
        finally:
            loris.close()
        _await_zero(_gauge_getters(server))

    def test_timeout_disabled_by_default(self, served):
        """Without --client-timeout an idle connection is never reaped."""
        _frontend, server, _records = served
        with WireTester(server.host, server.port) as wire:
            time.sleep(1.2)
            assert wire.roundtrip_raw("PING") == b"OK 0\n"


# ---------------------------------------------------------------------------
# BUSY conformance and connection-gauge churn
# ---------------------------------------------------------------------------


class TestBusyConformance:
    @pytest.fixture(scope="class")
    def busy_servers(self, wire_stack):
        """Both front-ends over a gateway that rejects everything."""
        session, _scheduler, _gateway, records = wire_stack
        scheduler = RequestScheduler(session, max_wait_s=0.005)
        gateway = AlignmentGateway(session, scheduler, max_pending=0)
        servers, threads = {}, []
        for frontend in FRONTEND_NAMES:
            server, thread = _start_server(frontend, scheduler,
                                           gateway=gateway)
            servers[frontend] = server
            threads.append((server, thread))
        try:
            yield servers, records
        finally:
            for server, thread in threads:
                _stop_server(server, thread)
            # Tear down only what this fixture built: the session belongs
            # to the module stack, so no gateway.close() here.
            gateway.admission.close()
            scheduler.close()

    def test_busy_reply_byte_identical_and_counted(self, busy_servers):
        servers, records = busy_servers
        payload = fastq_payload(records[:2])
        replies = {}
        for frontend, server in servers.items():
            busy = server.metrics.counter("server_busy_total", verb="ALIGN")
            before = busy.value
            with WireTester(server.host, server.port) as wire:
                wire.send(b"ALIGN 2\n" + payload)
                replies[frontend] = wire.read_status()
                # BUSY is an explicit retry signal, not a broken connection:
                assert wire.roundtrip_raw("PING") == b"OK 0\n"
            assert busy.value == before + 1
        assert replies["thread"] == replies["async"]
        assert replies["thread"] == ("BUSY gateway pending queue is full "
                                     "(0 >= max_pending=0); retry later")

    def test_stream_chunk_busy_closes_cleanly(self, busy_servers):
        servers, records = busy_servers
        for frontend, server in servers.items():
            with WireTester(server.host, server.port) as wire:
                wire.send_line("ALIGNSTREAM")
                wire.send_line("CHUNK 2").send(fastq_payload(records[:2]))
                parts, final = wire.read_stream_reply()
                assert parts == [], frontend
                assert final.startswith("BUSY "), frontend
                assert wire.read_line() == b"", frontend
            _await_zero(_gauge_getters(server))


class TestConnectionGauges:
    def test_active_connections_track_churn(self, served):
        _frontend, server, _records = served
        metrics = server.metrics
        active = metrics.gauge("server_active_connections")
        total = metrics.counter("server_connections_total")
        _await_zero({"active": lambda: active.value})
        before_total = total.value
        wires = [WireTester(server.host, server.port) for _ in range(8)]
        try:
            for wire in wires:
                # The PING reply proves the handler is live (and counted).
                assert wire.roundtrip_raw("PING") == b"OK 0\n"
            assert active.value == 8
            assert total.value == before_total + 8
        finally:
            for wire in wires:
                wire.close()
        _await_zero({"active": lambda: active.value})


class TestShutdownVerb:
    @pytest.mark.parametrize("frontend", FRONTEND_NAMES)
    def test_shutdown_replies_then_stops(self, frontend, wire_stack):
        _session, scheduler, gateway, _records = wire_stack
        server, thread = _start_server(frontend, scheduler, gateway=gateway)
        try:
            # Capture the address up front: once the listener closes the
            # async front-end no longer has a bound socket to report.
            host, port = server.host, server.port
            with WireTester(host, port) as wire:
                assert wire.roundtrip_raw("SHUTDOWN") == b"OK 0\n"
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "SHUTDOWN did not stop the server"
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=2.0).close()
        finally:
            _stop_server(server, thread)


# ---------------------------------------------------------------------------
# The served byte-identity matrix (acceptance)
# ---------------------------------------------------------------------------


def _cell_id(param):
    backend, bulk = param
    return f"{backend}-bulk{'on' if bulk else 'off'}"


@pytest.fixture(scope="module",
                params=[(b, bulk) for b in BACKENDS for bulk in (False, True)],
                ids=_cell_id)
def matrix_cell(request):
    """One (backend, bulk) cell: a resident session with both front-ends."""
    backend, bulk = request.param
    session, records = _make_session(backend=backend, bulk=bulk)
    scheduler = RequestScheduler(session, max_wait_s=0.005)
    servers, threads = {}, []
    for frontend in FRONTEND_NAMES:
        server, thread = _start_server(frontend, scheduler)
        servers[frontend] = server
        threads.append((server, thread))
    try:
        yield session, servers, records
    finally:
        for server, thread in threads:
            _stop_server(server, thread)
        scheduler.close()
        session.close()


def _offline_reference(session, workload, reads) -> str:
    from repro.core.plan import normalize_reads
    outcome = session.run_plan_many(workload, [normalize_reads(reads)])
    return session.render(workload, outcome.per_request_outputs[0])


class TestByteIdentityMatrix:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_oneshot_matches_offline_and_thread_frontend(
            self, matrix_cell, workload):
        session, servers, records = matrix_cell
        reads = records[:24]    # even count: valid for PAIRED too
        verb = workload.upper()
        payload = fastq_payload(reads)
        reference = _offline_reference(session, workload, reads)
        expected = (f"OK {len(reference.encode('ascii'))}\n".encode("ascii")
                    + reference.encode("ascii"))
        replies = {}
        for frontend, server in servers.items():
            with WireTester(server.host, server.port) as wire:
                replies[frontend] = wire.roundtrip_raw(
                    f"{verb} {len(reads)}", payload)
        assert replies["async"] == expected
        assert replies["async"] == replies["thread"]

    @pytest.mark.parametrize("chunk_reads", STREAM_CHUNK_SIZES)
    def test_streamed_reply_matches_oneshot(self, matrix_cell, chunk_reads):
        """ALIGNSTREAM through the asyncio front-end: at any chunk size the
        concatenated parts are byte-identical to the one-shot reply (and to
        the thread front-end's stream)."""
        session, servers, records = matrix_cell
        reads = records[:24]
        reference = _offline_reference(session, "align", reads)
        outcomes = {}
        for frontend, server in servers.items():
            with WireTester(server.host, server.port) as wire:
                wire.send_line("ALIGNSTREAM")
                for start in range(0, len(reads), chunk_reads):
                    chunk = reads[start:start + chunk_reads]
                    wire.send_line(f"CHUNK {len(chunk)}")
                    wire.send(fastq_payload(chunk))
                wire.send_line("END")
                parts, final = wire.read_stream_reply()
            assert final.startswith("DONE "), (frontend, final)
            outcomes[frontend] = (b"".join(parts), final)
        assert outcomes["async"][0].decode("ascii") == reference
        assert outcomes["async"] == outcomes["thread"]


# ---------------------------------------------------------------------------
# Front-end selection plumbing
# ---------------------------------------------------------------------------


class TestFrontendSelection:
    def test_default_frontend_is_async(self):
        from repro.service.async_server import AsyncAlignmentServer
        assert DEFAULT_FRONTEND == "async"
        assert FRONTENDS["async"] is AsyncAlignmentServer

    def test_serve_rejects_unknown_frontend(self, wire_stack):
        from repro import api
        session, _scheduler, _gateway, _records = wire_stack
        with pytest.raises(ValueError, match="unknown frontend 'warp'"):
            api.serve(None, session=session, frontend="warp")

    def test_stats_and_metrics_shapes_match(self, both_served):
        """STATS/METRICS come from one shared mixin: same document keys and
        series names from either front-end."""
        servers, _records = both_served
        docs = {}
        for frontend, server in servers.items():
            with WireTester(server.host, server.port) as wire:
                docs[frontend] = json.loads(wire.roundtrip_raw("STATS")
                                            .split(b"\n", 1)[1])
        assert sorted(docs["thread"]) == sorted(docs["async"])
        assert docs["thread"]["session"] == docs["async"]["session"]
