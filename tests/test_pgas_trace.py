"""Tests for virtual clocks, time breakdowns and phase traces."""

import pytest

from repro.pgas.trace import PhaseTrace, TimeBreakdown, VirtualClock


class TestTimeBreakdown:
    def test_total(self):
        breakdown = TimeBreakdown(compute=1.0, comm=2.0, io=0.5)
        assert breakdown.total == pytest.approx(3.5)
        assert TimeBreakdown().total == 0.0

    def test_add_and_sub(self):
        a = TimeBreakdown(compute=1.0, comm=2.0, io=3.0)
        b = TimeBreakdown(compute=0.5, comm=1.0, io=1.0)
        total = a + b
        assert (total.compute, total.comm, total.io) == (1.5, 3.0, 4.0)
        delta = a - b
        assert (delta.compute, delta.comm, delta.io) == (0.5, 1.0, 2.0)


class TestVirtualClock:
    def test_charges_accumulate(self):
        clock = VirtualClock()
        clock.charge_compute(1.0)
        clock.charge_comm(2.0)
        clock.charge_io(0.25)
        assert clock.now == pytest.approx(3.25)
        snapshot = clock.snapshot()
        assert snapshot.compute == 1.0
        assert snapshot.comm == 2.0
        assert snapshot.io == 0.25

    def test_negative_charge_raises(self):
        clock = VirtualClock()
        for method in (clock.charge_compute, clock.charge_comm, clock.charge_io):
            with pytest.raises(ValueError):
                method(-1.0)

    def test_advance_to_attributes_wait_to_comm(self):
        clock = VirtualClock()
        clock.charge_compute(1.0)
        clock.advance_to(4.0)
        assert clock.now == pytest.approx(4.0)
        assert clock.comm == pytest.approx(3.0)

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock()
        clock.charge_compute(2.0)
        clock.advance_to(1.0)
        assert clock.now == pytest.approx(2.0)


class TestPhaseTrace:
    def make_trace(self):
        return PhaseTrace(name="align", per_rank=[
            TimeBreakdown(compute=1.0, comm=0.5),
            TimeBreakdown(compute=3.0, comm=1.0),
            TimeBreakdown(compute=2.0, comm=0.0),
        ])

    def test_elapsed_is_slowest_rank(self):
        trace = self.make_trace()
        assert trace.elapsed == pytest.approx(4.0)
        assert trace.max_total == trace.elapsed
        assert trace.min_total == pytest.approx(1.5)
        assert trace.avg_total == pytest.approx((1.5 + 4.0 + 2.0) / 3)

    def test_compute_statistics(self):
        trace = self.make_trace()
        assert trace.max_compute == 3.0
        assert trace.min_compute == 1.0
        assert trace.avg_compute == pytest.approx(2.0)

    def test_aggregates(self):
        trace = self.make_trace()
        assert trace.total_compute == pytest.approx(6.0)
        assert trace.total_comm == pytest.approx(1.5)
        assert trace.n_ranks == 3

    def test_empty_trace(self):
        trace = PhaseTrace(name="empty")
        assert trace.elapsed == 0.0
        assert trace.avg_compute == 0.0
        assert trace.min_total == 0.0

    def test_summary_keys_consistent(self):
        summary = self.make_trace().summary()
        assert summary["elapsed"] == summary["max_total"]
        assert summary["min_compute"] <= summary["avg_compute"] <= summary["max_compute"]
