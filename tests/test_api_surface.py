"""Pins the public API surface of :mod:`repro.api`.

``repro.api`` is the documented compatibility surface: removing or renaming
an export is a breaking change and must show up as a deliberate edit to this
snapshot, never as an accidental side effect of a refactor.
"""

import inspect

from repro import api

#: The pinned export list.  Update deliberately, together with README's
#: "Public API & custom pipelines" section.
EXPECTED_EXPORTS = sorted([
    # entry points
    "align",
    "align_paired",
    "align_stream",
    "count",
    "screen",
    "plan",
    "run_plan",
    "prepare",
    "serve",
    # plan vocabulary
    "AlignmentPlan",
    "PlanRunner",
    "PlanResult",
    "PlanValidationError",
    "Stage",
    "QueryStage",
    "SinkStage",
    "PairStage",
    "StageContext",
    "ReadState",
    "PairState",
    "BuildIndex",
    "ReadQueries",
    "ExactPath",
    "SeedLookup",
    "CandidateCollect",
    "ExtendAlign",
    "PairJoin",
    "MateRescue",
    "EmitSam",
    "EmitSamPaired",
    "EmitSeedCounts",
    "EmitScreen",
    "WORKLOAD_PLANS",
    "plan_for_workload",
    "normalize_paired_reads",
    # configuration / results
    "AlignerConfig",
    "AlignerReport",
    "PhaseStats",
    "REPORT_SCHEMA_VERSION",
    "SeedCountSummary",
    "ScreenSummary",
    "PairedSamRecord",
    "paired_sam_text",
    "MerAligner",
    "MachineModel",
    "EDISON_LIKE",
    # serving
    "AlignmentService",
    "AlignmentSession",
    "AlignmentServer",
    "AsyncAlignmentServer",
    "AlignmentClient",
    "SocketAlignmentClient",
    "RequestScheduler",
    "ServiceStats",
    # multi-tenant gateway
    "AlignmentGateway",
    "AdmissionController",
    "GatewayBusyError",
    "IndexRegistry",
    "ResultCache",
    "ServiceBusyError",
    # observability
    "MetricsRegistry",
    "TraceLog",
    "LoadGenerator",
    # streaming ingestion
    "BoundedChannel",
    "ChannelClosed",
    "ChannelFull",
    "InputFileError",
    "ReadChunk",
    "StreamPart",
    "open_read_stream",
])


class TestApiSurface:
    def test_exports_match_snapshot(self):
        assert sorted(api.__all__) == EXPECTED_EXPORTS

    def test_every_export_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.{name} missing"

    def test_entry_points_are_callables_with_docstrings(self):
        for name in ("align", "align_paired", "align_stream", "count",
                     "screen", "plan", "run_plan", "prepare", "serve"):
            fn = getattr(api, name)
            assert callable(fn)
            assert inspect.getdoc(fn), f"repro.api.{name} lacks a docstring"

    def test_entry_points_carry_runnable_examples(self):
        """Every entry point's docstring embeds a doctest (CI executes them
        via ``pytest --doctest-modules src/repro/api.py``)."""
        for name in ("align", "align_paired", "align_stream", "count",
                     "screen", "plan", "run_plan", "prepare", "serve"):
            doc = inspect.getdoc(getattr(api, name))
            assert ">>>" in doc, f"repro.api.{name} lacks a doctest example"

    def test_workload_registry_matches_plan_factories(self):
        assert sorted(api.WORKLOAD_PLANS) == ["align", "count", "paired",
                                              "screen"]
        for workload in api.WORKLOAD_PLANS:
            built = api.plan(workload)
            assert built.workload == workload

    def test_package_root_reexports_plan_types(self):
        import repro
        assert repro.api is api
        for name in ("AlignmentPlan", "PlanRunner", "PlanResult"):
            assert hasattr(repro, name)
