"""Tests for the per-rank local bucket store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashtable.local_table import BucketEntry, LocalBucketStore


class TestLocalBucketStore:
    def test_insert_and_lookup(self):
        store = LocalBucketStore(16)
        store.insert("AAA", ("t0", 0))
        entry = store.lookup("AAA")
        assert isinstance(entry, BucketEntry)
        assert entry.values == [("t0", 0)]
        assert entry.count == 1

    def test_multiple_values_per_key(self):
        store = LocalBucketStore(16)
        store.insert("AAA", 1)
        store.insert("AAA", 2)
        entry = store.lookup("AAA")
        assert entry.values == [1, 2]
        assert entry.count == 2
        assert store.n_keys == 1
        assert store.n_values == 2

    def test_missing_key(self):
        store = LocalBucketStore(8)
        assert store.lookup("nope") is None
        assert store.count("nope") == 0
        assert "nope" not in store

    def test_contains_and_len(self):
        store = LocalBucketStore(8)
        store.insert("a", 1)
        store.insert("b", 1)
        assert "a" in store and "b" in store
        assert len(store) == 2

    def test_entries_iteration(self):
        store = LocalBucketStore(4)
        keys = {f"key{i}" for i in range(20)}
        for key in keys:
            store.insert(key, key)
        assert {entry.key for entry in store.entries()} == keys
        assert set(store.keys()) == keys

    def test_load_factor_and_max_bucket(self):
        store = LocalBucketStore(4)
        for i in range(8):
            store.insert(f"k{i}", i)
        assert store.load_factor() == pytest.approx(2.0)
        assert store.max_bucket_size() >= 2

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            LocalBucketStore(0)

    @given(st.lists(st.text(alphabet="ACGT", min_size=1, max_size=8), max_size=80))
    @settings(max_examples=40)
    def test_matches_dict_semantics(self, keys):
        store = LocalBucketStore(8)
        reference: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            store.insert(key, i)
            reference.setdefault(key, []).append(i)
        assert store.n_keys == len(reference)
        assert store.n_values == len(keys)
        for key, values in reference.items():
            entry = store.lookup(key)
            assert entry.values == values
            assert entry.count == len(values)


class TestTaggedInsertOrder:
    """Arrival tags pin a canonical value order regardless of insert order."""

    def test_out_of_order_tags_converge(self):
        a, b = LocalBucketStore(8), LocalBucketStore(8)
        tagged = [("k", f"v{i}", (i % 3, i)) for i in range(9)]
        for key, value, tag in tagged:
            a.insert(key, value, tag=tag)
        for key, value, tag in reversed(tagged):
            b.insert(key, value, tag=tag)
        assert a.lookup("k").values == b.lookup("k").values
        assert a.lookup("k").values == sorted(
            a.lookup("k").values, key=lambda v: dict(
                (f"v{i}", ((i % 3, i))) for i in range(9))[v])

    def test_untagged_inserts_keep_arrival_order(self):
        store = LocalBucketStore(8)
        for value in ("x", "y", "z"):
            store.insert("k", value)
        assert store.lookup("k").values == ["x", "y", "z"]

    def test_mixed_tagged_and_untagged_appends_without_crash(self):
        store = LocalBucketStore(8)
        store.insert("k", "legacy")          # untagged
        store.insert("k", "b", tag=(1, 0))
        store.insert("k", "a", tag=(0, 0))   # out of order after a None tag
        entry = store.lookup("k")
        assert entry.values == ["legacy", "b", "a"]
        assert entry.count == 3
