"""Tests for the aggregating-stores construction optimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashtable.aggregating import AggregatingStoreBuffer, LocalSharedStack
from repro.hashtable.distributed import DistributedHashTable
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


def make_runtime(n_ranks=4):
    return PgasRuntime(n_ranks=n_ranks, machine=EDISON_LIKE.with_cores_per_node(2))


def build_with_aggregation(pairs, n_ranks=4, buffer_size=8):
    """Build a table with the aggregating-stores path; returns (runtime, table)."""
    runtime = make_runtime(n_ranks)
    table = DistributedHashTable(runtime, buckets_per_rank=64)
    AggregatingStoreBuffer.allocate_stacks(runtime, capacity_per_rank=4)
    aggregators = [AggregatingStoreBuffer(ctx, table, buffer_size=buffer_size)
                   for ctx in runtime.contexts]
    # Every rank adds its slice of the pairs (like seeds of its own targets).
    for rank, ctx in enumerate(runtime.contexts):
        for key, value in pairs[rank::n_ranks]:
            aggregators[rank].add(key, value)
    for aggregator in aggregators:
        aggregator.flush_all()
    # barrier, then every rank drains its own stack
    for aggregator in aggregators:
        aggregator.drain_local_stack()
    return runtime, table, aggregators


class TestLocalSharedStack:
    def test_with_capacity(self):
        stack = LocalSharedStack.with_capacity(5)
        assert stack.capacity == 5
        assert len(stack.entries) == 5

    def test_ensure_capacity_grows(self):
        stack = LocalSharedStack.with_capacity(2)
        stack.ensure_capacity(10)
        assert stack.capacity == 10
        stack.ensure_capacity(4)  # never shrinks
        assert stack.capacity == 10

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LocalSharedStack.with_capacity(-1)


class TestAggregatingStores:
    def test_equivalent_to_direct_insertion(self):
        pairs = [(f"K{i % 17}", i) for i in range(200)]
        _, agg_table, _ = build_with_aggregation(pairs)

        runtime = make_runtime()
        direct_table = DistributedHashTable(runtime, buckets_per_rank=64)
        for rank, ctx in enumerate(runtime.contexts):
            for key, value in pairs[rank::4]:
                direct_table.insert_direct(ctx, key, value)

        agg = agg_table.as_dict()
        direct = direct_table.as_dict()
        assert set(agg) == set(direct)
        for key in agg:
            assert sorted(agg[key]) == sorted(direct[key])

    def test_counts_preserved(self):
        pairs = [("DUP", i) for i in range(10)] + [("UNIQ", 0)]
        _, table, _ = build_with_aggregation(pairs, buffer_size=3)
        owner = table.owner_of("DUP")
        assert table.local_store(owner).count("DUP") == 10
        assert table.local_store(table.owner_of("UNIQ")).count("UNIQ") == 1

    def test_message_reduction_vs_direct(self):
        pairs = [(f"K{i}", i) for i in range(400)]
        agg_runtime, _, _ = build_with_aggregation(pairs, buffer_size=50)
        agg_messages = agg_runtime.total_stats.messages

        direct_runtime = make_runtime()
        direct_table = DistributedHashTable(direct_runtime, buckets_per_rank=64)
        for rank, ctx in enumerate(direct_runtime.contexts):
            for key, value in pairs[rank::4]:
                direct_table.insert_direct(ctx, key, value)
        direct_messages = direct_runtime.total_stats.messages

        # One aggregate transfer carries up to S entries: far fewer messages.
        assert agg_messages < direct_messages / 4

    def test_atomics_reduced_by_factor_s(self):
        pairs = [(f"K{i}", i) for i in range(300)]
        buffer_size = 30
        agg_runtime, _, aggs = build_with_aggregation(pairs, buffer_size=buffer_size)
        total_entries = sum(a.entries_added for a in aggs)
        total_atomics = agg_runtime.total_stats.atomics
        assert total_entries == 300
        # one fetch-add per flush, each flush carries up to S entries
        assert total_atomics <= (total_entries // buffer_size) + 4 * 4

    def test_flush_on_full_buffer(self):
        runtime = make_runtime(2)
        table = DistributedHashTable(runtime, buckets_per_rank=16,
                                     hash_fn=lambda key: 1)  # all keys to rank 1
        AggregatingStoreBuffer.allocate_stacks(runtime, capacity_per_rank=2)
        aggregator = AggregatingStoreBuffer(runtime.contexts[0], table, buffer_size=3)
        aggregator.add("a", 1)
        aggregator.add("b", 2)
        assert aggregator.flushes == 0
        assert aggregator.pending_entries() == 2
        aggregator.add("c", 3)  # third entry fills the buffer
        assert aggregator.flushes == 1
        assert aggregator.pending_entries() == 0

    def test_drain_requires_ownership_consistency(self):
        # Entries drained locally must all be owned by the draining rank.
        pairs = [(f"K{i}", i) for i in range(50)]
        _, table, aggs = build_with_aggregation(pairs, buffer_size=5)
        # draining again is a no-op for correctness (entries already inserted,
        # but drain re-inserts; so check it *would* double -- therefore the
        # pipeline only drains once per build).
        assert table.n_values == 50

    def test_stacks_allocated_flag(self):
        runtime = make_runtime(2)
        assert not AggregatingStoreBuffer.stacks_allocated(runtime)
        AggregatingStoreBuffer.allocate_stacks(runtime)
        assert AggregatingStoreBuffer.stacks_allocated(runtime)

    def test_invalid_buffer_size(self):
        runtime = make_runtime(2)
        table = DistributedHashTable(runtime)
        with pytest.raises(ValueError):
            AggregatingStoreBuffer(runtime.contexts[0], table, buffer_size=0)

    @given(st.lists(st.tuples(st.text(alphabet="ACGT", min_size=2, max_size=6),
                              st.integers(0, 50)), max_size=80),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence_with_direct(self, pairs, buffer_size):
        _, agg_table, _ = build_with_aggregation(pairs, n_ranks=3,
                                                 buffer_size=buffer_size)
        runtime = make_runtime(3)
        direct_table = DistributedHashTable(runtime, buckets_per_rank=64)
        for rank, ctx in enumerate(runtime.contexts):
            for key, value in pairs[rank::3]:
                direct_table.insert_direct(ctx, key, value)
        agg = {k: sorted(v) for k, v in agg_table.as_dict().items()}
        direct = {k: sorted(v) for k, v in direct_table.as_dict().items()}
        assert agg == direct
