"""Tests for the suffix array, BWT and FM-index substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fmindex import FMIndex, bwt_from_suffix_array, suffix_array
from repro.dna.sequence import random_dna

dna = st.text(alphabet="ACGT", min_size=0, max_size=80)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=80)


def naive_suffix_array(text: str) -> list[int]:
    return sorted(range(len(text)), key=lambda i: text[i:])


def naive_count(text: str, pattern: str) -> int:
    if not pattern:
        return len(text) + 1
    count = 0
    for i in range(len(text) - len(pattern) + 1):
        if text[i:i + len(pattern)] == pattern:
            count += 1
    return count


class TestSuffixArray:
    def test_known_example(self):
        assert list(suffix_array("banana")) == naive_suffix_array("banana")

    def test_empty_and_single(self):
        assert list(suffix_array("")) == []
        assert list(suffix_array("A")) == [0]

    def test_repetitive_text(self):
        text = "AAAAAA"
        assert list(suffix_array(text)) == naive_suffix_array(text)

    @given(dna)
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_property(self, text):
        assert list(suffix_array(text)) == naive_suffix_array(text)

    def test_is_permutation(self, rng):
        text = random_dna(500, rng=rng)
        sa = suffix_array(text)
        assert sorted(sa) == list(range(len(text)))


class TestBwt:
    def test_known_example(self):
        text = "banana$"
        sa = suffix_array(text)
        assert bwt_from_suffix_array(text, sa) == "annb$aa"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bwt_from_suffix_array("abc", np.array([0]))

    def test_bwt_is_permutation_of_text(self, rng):
        text = random_dna(100, rng=rng) + "$"
        bwt = bwt_from_suffix_array(text, suffix_array(text))
        assert sorted(bwt) == sorted(text)


class TestFMIndex:
    def test_count_simple(self):
        fm = FMIndex("ACGTACGTACGAAC")
        assert fm.count("ACG") == 3
        assert fm.count("ACGT") == 2
        assert fm.count("TTTT") == 0
        assert fm.count("") == len("ACGTACGTACGAAC") + 1

    def test_locate_simple(self):
        fm = FMIndex("ACGTACGTACGAAC")
        assert sorted(fm.locate("ACG")) == [0, 4, 8]
        assert sorted(fm.locate("AC")) == [0, 4, 8, 12]
        assert fm.locate("GGG") == []

    def test_locate_with_limit(self):
        fm = FMIndex("ACACACACAC")
        positions = fm.locate("AC", limit=2)
        assert len(positions) == 2
        assert all(fm_text[p:p + 2] == "AC" for fm_text, p in
                   zip(["ACACACACAC"] * 2, positions))

    def test_pattern_with_foreign_character(self):
        fm = FMIndex("ACGTACGT")
        assert fm.count("ACN") == 0
        assert fm.locate("XYZ") == []

    def test_sentinel_in_text_raises(self):
        with pytest.raises(ValueError):
            FMIndex("AC$GT")

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            FMIndex("ACGT", sa_sample_rate=0)

    def test_sample_rates_agree(self, rng):
        text = random_dna(300, rng=rng)
        dense = FMIndex(text, sa_sample_rate=1)
        sparse = FMIndex(text, sa_sample_rate=16)
        for _ in range(10):
            start = int(rng.integers(0, len(text) - 12))
            pattern = text[start:start + 12]
            assert sorted(dense.locate(pattern)) == sorted(sparse.locate(pattern))

    def test_index_nbytes_positive(self):
        assert FMIndex("ACGT" * 100).index_nbytes > 0

    @given(dna_nonempty, st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_naive_property(self, text, pattern_length):
        fm = FMIndex(text)
        pattern = text[:pattern_length]
        assert fm.count(pattern) == naive_count(text, pattern)

    @given(dna_nonempty)
    @settings(max_examples=40, deadline=None)
    def test_locate_positions_are_real_occurrences(self, text):
        fm = FMIndex(text)
        pattern = text[: min(4, len(text))]
        for position in fm.locate(pattern):
            assert text[position:position + len(pattern)] == pattern

    def test_long_random_text(self, rng):
        text = random_dna(2000, rng=rng)
        fm = FMIndex(text)
        for _ in range(20):
            start = int(rng.integers(0, len(text) - 25))
            pattern = text[start:start + 25]
            assert fm.count(pattern) == naive_count(text, pattern)
            assert start in fm.locate(pattern)
