"""Tests for the real-thread SPMD executor."""

import pytest

from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.executor import ThreadedExecutor
from repro.pgas.runtime import PgasRuntime
from repro.pgas.shared import SharedArray


@pytest.fixture
def runtime():
    return PgasRuntime(n_ranks=4, machine=EDISON_LIKE.with_cores_per_node(2))


class TestThreadedExecutor:
    def test_results_in_rank_order(self, runtime):
        executor = ThreadedExecutor(runtime)
        results = executor.run(lambda ctx: ctx.me ** 2)
        assert results == [0, 1, 4, 9]

    def test_barrier_synchronises_threads(self, runtime):
        runtime.heap.alloc_all("box", lambda rank: {})
        executor = ThreadedExecutor(runtime)

        def program(ctx):
            ctx.put((ctx.me + 1) % ctx.n_ranks, "box", "v", ctx.me)
            ctx.barrier()
            return ctx.get(ctx.me, "box", "v")

        results = executor.run(program)
        assert results == [(r - 1) % 4 for r in range(4)]

    def test_concurrent_fetch_add_is_atomic(self, runtime):
        runtime.heap.alloc(0, "ctr", SharedArray(1))
        executor = ThreadedExecutor(runtime)
        increments_per_rank = 200

        def program(ctx):
            for _ in range(increments_per_rank):
                ctx.fetch_add(0, "ctr", 0, 1)

        executor.run(program)
        assert runtime.heap.segment(0, "ctr")[0] == increments_per_rank * runtime.n_ranks

    def test_exception_propagates(self, runtime):
        executor = ThreadedExecutor(runtime)

        def failing(ctx):
            if ctx.me == 2:
                raise ValueError("rank 2 exploded")
            ctx.barrier()

        with pytest.raises(ValueError, match="rank 2 exploded"):
            executor.run(failing)

    def test_barrier_unavailable_after_run(self, runtime):
        executor = ThreadedExecutor(runtime)
        executor.run(lambda ctx: None)
        with pytest.raises(RuntimeError):
            runtime.contexts[0].barrier()
