"""Tests for the SPMD runtime: rank contexts, one-sided ops, barriers, phases."""

import numpy as np
import pytest

from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime, estimate_nbytes
from repro.pgas.shared import SharedArray


@pytest.fixture
def runtime():
    # 8 ranks over 2 nodes (ppn = 4) so that on-node / off-node paths differ.
    return PgasRuntime(n_ranks=8, machine=EDISON_LIKE.with_cores_per_node(4))


class TestEstimateNbytes:
    def test_primitives(self):
        assert estimate_nbytes(None) == 0
        assert estimate_nbytes(3) == 8
        assert estimate_nbytes(2.5) == 8
        assert estimate_nbytes("ACGT") == 4
        assert estimate_nbytes(b"12345") == 5

    def test_numpy(self):
        assert estimate_nbytes(np.zeros(10, dtype=np.int64)) == 80

    def test_strings_and_bytes(self):
        assert estimate_nbytes("") == 0
        assert estimate_nbytes("A" * 137) == 137
        assert estimate_nbytes(bytearray(b"xyz")) == 3

    def test_containers(self):
        assert estimate_nbytes(["AC", "GT"]) == 2 + 2 + 16
        assert estimate_nbytes(("AC", "GT")) == 2 + 2 + 16
        assert estimate_nbytes({"AC"}) == 2 + 8
        assert estimate_nbytes([]) == 0

    def test_dict_charges_per_element_header_like_lists(self):
        # One 8-byte header per entry, matching list/tuple/set accounting.
        assert estimate_nbytes({"k": "vv"}) == 1 + 2 + 8
        assert estimate_nbytes({}) == 0
        assert estimate_nbytes({"a": "b", "cc": "dd"}) == (1 + 1) + (2 + 2) + 16

    def test_nested_containers(self):
        assert estimate_nbytes([["AC"], {"G": "T"}]) == (2 + 8) + (1 + 1 + 8) + 16

    def test_object_with_nbytes_attr(self):
        class Blob:
            nbytes = 123
        assert estimate_nbytes(Blob()) == 123

    def test_unknown_object(self):
        assert estimate_nbytes(object()) == 16


class TestTopology:
    def test_nodes(self, runtime):
        ctx0, ctx5 = runtime.contexts[0], runtime.contexts[5]
        assert ctx0.node == 0
        assert ctx5.node == 1
        assert ctx0.same_node(1)
        assert not ctx0.same_node(5)
        assert ctx0.ranks_on_my_node() == [0, 1, 2, 3]
        assert runtime.n_nodes == 2

    def test_my_slice_partitions_everything(self, runtime):
        n_items = 37
        covered = []
        for ctx in runtime.contexts:
            block = ctx.my_slice(n_items)
            covered.extend(range(n_items)[block])
        assert covered == list(range(n_items))

    def test_my_items(self, runtime):
        items = list(range(10))
        ctx = runtime.contexts[0]
        assert ctx.my_items(items) == items[ctx.my_slice(10)]


class TestOneSidedOps:
    def test_put_get_roundtrip(self, runtime):
        ctx0, ctx7 = runtime.contexts[0], runtime.contexts[7]
        runtime.heap.alloc(7, "kv", {})
        ptr = ctx0.put(7, "kv", "key", "HELLO")
        assert ptr.owner == 7
        assert ctx7.get(7, "kv", "key") == "HELLO"
        assert ctx0.get_ptr(ptr) == "HELLO"

    def test_get_missing_key(self, runtime):
        runtime.heap.alloc(1, "kv", {})
        ctx = runtime.contexts[0]
        with pytest.raises(KeyError):
            ctx.get(1, "kv", "absent")
        assert ctx.get(1, "kv", "absent", missing_ok=True, default=5) == 5

    def test_put_updates_stats_and_clock(self, runtime):
        ctx = runtime.contexts[0]
        runtime.heap.alloc(5, "kv", {})
        before = ctx.clock.now
        ctx.put(5, "kv", 1, "x" * 100)
        assert ctx.stats.puts == 1
        assert ctx.stats.bytes_put == 100
        assert ctx.stats.off_node_ops == 1
        assert ctx.clock.now > before

    def test_local_vs_remote_cost(self, runtime):
        ctx = runtime.contexts[0]
        runtime.heap.alloc(0, "kv", {})
        runtime.heap.alloc(4, "kv", {})
        ctx.put(0, "kv", "a", "x" * 1000)
        local_time = ctx.clock.comm
        ctx.put(4, "kv", "b", "x" * 1000)
        remote_time = ctx.clock.comm - local_time
        assert remote_time > local_time

    def test_fetch_add_semantics(self, runtime):
        runtime.heap.alloc(3, "ctr", SharedArray(2))
        ctx = runtime.contexts[0]
        assert ctx.fetch_add(3, "ctr", 0, 5) == 0
        assert ctx.fetch_add(3, "ctr", 0, 2) == 5
        assert runtime.heap.segment(3, "ctr")[0] == 7
        assert ctx.stats.atomics == 2

    def test_fetch_add_on_non_array_raises(self, runtime):
        runtime.heap.alloc(1, "kv", {})
        with pytest.raises(TypeError):
            runtime.contexts[0].fetch_add(1, "kv", 0)

    def test_charge_op_and_io(self, runtime):
        ctx = runtime.contexts[0]
        ctx.charge_op("sw_cell", 1000)
        assert ctx.stats.compute_time > 0
        ctx.charge_io_bytes(10_000)
        assert ctx.stats.io_time > 0
        assert ctx.clock.now == pytest.approx(ctx.stats.total_time)

    def test_barrier_without_executor_raises(self, runtime):
        with pytest.raises(RuntimeError, match="ThreadedExecutor"):
            runtime.contexts[0].barrier()


class TestBulkOps:
    def test_get_many_returns_values_in_request_order(self, runtime):
        runtime.heap.alloc(5, "kv", {})
        runtime.heap.alloc(6, "kv", {})
        ctx5, ctx0 = runtime.contexts[5], runtime.contexts[0]
        ctx5.put(5, "kv", "a", "AA")
        ctx5.put(6, "kv", "b", "BBB")
        ctx5.put(5, "kv", "c", "CCCC")
        values = ctx0.get_many([(5, "kv", "a"), (6, "kv", "b"), (5, "kv", "c")])
        assert values == ["AA", "BBB", "CCCC"]

    def test_get_many_charges_one_message_per_destination(self, runtime):
        runtime.heap.alloc(5, "kv", {})
        runtime.heap.alloc(6, "kv", {})
        writer = runtime.contexts[5]
        for rank, key in ((5, "a"), (5, "b"), (6, "c"), (6, "d"), (6, "e")):
            writer.put(rank, "kv", key, "x" * 100)
        ctx = runtime.contexts[0]
        ctx.get_many([(5, "kv", "a"), (5, "kv", "b"), (6, "kv", "c"),
                      (6, "kv", "d"), (6, "kv", "e")])
        assert ctx.stats.gets == 2  # one aggregate per owner, not 5
        assert ctx.stats.bulk_gets == 2
        assert ctx.stats.bulk_items == 5
        assert ctx.stats.bytes_get == 500
        assert ctx.stats.off_node_ops == 2

    def test_get_many_cheaper_than_fine_grained_gets(self, runtime):
        runtime.heap.alloc(7, "kv", {})
        writer = runtime.contexts[7]
        keys = [f"k{i}" for i in range(50)]
        for key in keys:
            writer.put(7, "kv", key, "x" * 64)
        bulk_ctx, fine_ctx = runtime.contexts[0], runtime.contexts[1]
        bulk_ctx.get_many([(7, "kv", key) for key in keys])
        for key in keys:
            fine_ctx.get(7, "kv", key)
        assert bulk_ctx.stats.comm_time < fine_ctx.stats.comm_time
        assert bulk_ctx.stats.bytes_get == fine_ctx.stats.bytes_get

    def test_get_many_dedupes_repeated_requests(self, runtime):
        runtime.heap.alloc(5, "kv", {})
        writer = runtime.contexts[5]
        writer.put(5, "kv", "a", "x" * 100)
        ctx = runtime.contexts[0]
        values = ctx.get_many([(5, "kv", "a")] * 6)
        assert values == ["x" * 100] * 6
        assert ctx.stats.bulk_items == 1
        assert ctx.stats.bytes_get == 100

    def test_get_many_missing_key(self, runtime):
        runtime.heap.alloc(1, "kv", {})
        ctx = runtime.contexts[0]
        with pytest.raises(KeyError):
            ctx.get_many([(1, "kv", "absent")])
        assert ctx.get_many([(1, "kv", "absent")], missing_ok=True,
                            default=7) == [7]

    def test_put_many_stores_and_returns_pointers(self, runtime):
        runtime.heap.alloc(4, "kv", {})
        runtime.heap.alloc(5, "kv", {})
        ctx = runtime.contexts[0]
        pointers = ctx.put_many([(4, "kv", "a", "VV"), (5, "kv", "b", "WWW"),
                                 (4, "kv", "c", "XXXX")])
        assert [p.owner for p in pointers] == [4, 5, 4]
        assert runtime.heap.segment(4, "kv")["a"] == "VV"
        assert runtime.heap.segment(5, "kv")["b"] == "WWW"
        assert ctx.stats.puts == 2  # one aggregate per destination
        assert ctx.stats.bulk_puts == 2
        assert ctx.stats.bytes_put == 2 + 3 + 4

    def test_empty_bulk_requests(self, runtime):
        ctx = runtime.contexts[0]
        assert ctx.get_many([]) == []
        assert ctx.put_many([]) == []
        assert ctx.stats.messages == 0


class TestRunSpmd:
    def test_plain_function(self, runtime):
        result = runtime.run_spmd(lambda ctx: ctx.me * 2, phase_name="double")
        assert result.results == [r * 2 for r in range(8)]
        assert result.phases[0].name == "double"
        assert result.n_ranks == 8

    def test_generator_phases_and_barriers(self, runtime):
        runtime.heap.alloc_all("box", lambda rank: {})

        def program(ctx):
            ctx.put((ctx.me + 1) % ctx.n_ranks, "box", "from", ctx.me)
            yield "exchange"
            # After the barrier every rank can read what its neighbour wrote.
            value = ctx.get(ctx.me, "box", "from")
            return value

        result = runtime.run_spmd(program)
        assert result.results == [(r - 1) % 8 for r in range(8)]
        assert result.phases[0].name == "exchange"
        assert len(result.phases) == 2  # exchange + final segment

    def test_phase_elapsed_is_max_rank_time(self, runtime):
        def skewed(ctx):
            ctx.charge_compute_seconds(0.001 * (ctx.me + 1))
            return ctx.me

        result = runtime.run_spmd(skewed, phase_name="skewed")
        phase = result.phase("skewed")
        assert phase.elapsed == pytest.approx(phase.max_compute, rel=0.2)
        assert phase.max_compute == pytest.approx(0.008, rel=1e-6)
        assert phase.min_compute == pytest.approx(0.001, rel=1e-6)

    def test_clocks_synchronised_after_barrier(self, runtime):
        def skewed(ctx):
            ctx.charge_compute_seconds(0.001 * (ctx.me + 1))
            yield "work"
            return ctx.clock.now

        result = runtime.run_spmd(skewed)
        # After the barrier all ranks' clocks are at the same point.
        assert max(result.results) - min(result.results) < 1e-9

    def test_elapsed_accumulates(self, runtime):
        runtime.run_spmd(lambda ctx: ctx.charge_compute_seconds(0.01), phase_name="a")
        first = runtime.elapsed
        runtime.run_spmd(lambda ctx: ctx.charge_compute_seconds(0.01), phase_name="b")
        assert runtime.elapsed > first
        assert runtime.phase("a").name == "a"

    def test_phase_lookup_errors(self, runtime):
        result = runtime.run_spmd(lambda ctx: None, phase_name="only")
        with pytest.raises(KeyError):
            result.phase("missing")
        assert result.phase_elapsed("only") >= 0.0

    def test_per_rank_stats_are_per_invocation_deltas(self, runtime):
        """Regression: run_spmd used to hand back the contexts' *cumulative*
        CommStats, so a second invocation on the same runtime reported the
        first invocation's traffic too."""
        runtime.heap.alloc_all("kv", lambda rank: {})

        def program(ctx):
            ctx.put((ctx.me + 1) % ctx.n_ranks, "kv", "k", "v" * 10)

        first = runtime.run_spmd(program, phase_name="first")
        second = runtime.run_spmd(program, phase_name="second")
        assert first.total_stats.puts == 8
        assert second.total_stats.puts == 8  # not 16
        assert second.total_stats.bytes_put == 80
        assert second.per_rank_stats[0].puts == 1
        # The runtime's cumulative view still covers both invocations.
        assert runtime.total_stats.puts == 16

    def test_per_rank_stats_category_times_are_deltas(self, runtime):
        runtime.heap.alloc_all("kv", lambda rank: {})

        def program(ctx):
            ctx.put((ctx.me + 1) % ctx.n_ranks, "kv", "k", "v", category="probe")

        first = runtime.run_spmd(program, phase_name="a")
        second = runtime.run_spmd(program, phase_name="b")
        first_probe = first.per_rank_stats[0].time_by_category["probe"]
        second_probe = second.per_rank_stats[0].time_by_category["probe"]
        assert second_probe == pytest.approx(first_probe)

    def test_total_stats_aggregates_ranks(self, runtime):
        runtime.heap.alloc_all("kv", lambda rank: {})

        def program(ctx):
            ctx.put((ctx.me + 1) % ctx.n_ranks, "kv", "k", "v" * 10)

        result = runtime.run_spmd(program, phase_name="puts")
        assert result.total_stats.puts == 8

    def test_invalid_runtime(self):
        with pytest.raises(ValueError):
            PgasRuntime(0)
