"""Tests for the paired-end workload (the ``paired`` plan).

Four contracts are pinned here:

* **Paired I/O** -- interleaved and two-file FASTQ layouts normalize to the
  same interleaved read list, and malformed libraries (odd counts,
  mismatched halves) fail loudly at the entry point.
* **Mate rescue edge cases** -- a lost mate is recovered by the banded SW
  inside the insert window; pairs with both mates missing are not rescued;
  a rescue window clipped at the contig boundary stays safe; an insert-size
  outlier is not falsely rescued.
* **Byte identity** -- ``align --paired`` SAM is identical across the three
  execution backends with bulk batching on and off, and served ``PAIRED``
  requests (including scheduler-coalesced ones) match the offline output
  byte for byte.
* **Plan validation** -- pair stages demand a paired sink and cannot be
  followed by per-read stages.
"""

import pytest

from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.core.plan import (AlignmentPlan, BuildIndex, CandidateCollect,
                             EmitSam, EmitSamPaired, ExactPath, ExtendAlign,
                             PairJoin, PlanRunner, PlanValidationError,
                             ReadQueries, SeedLookup, normalize_paired_reads,
                             plan_for_workload)
from repro.dna.sequence import random_dna, reverse_complement
from repro.dna.synthetic import (GenomeSpec, ReadRecord, ReadSetSpec,
                                 make_dataset, sample_paired_reads,
                                 SyntheticGenome)
from repro.io.fastq import read_fastq_paired, write_fastq
from repro.io.sam import (FLAG_MATE_UNMAPPED, FLAG_PAIRED, FLAG_PROPER_PAIR,
                          FLAG_UNMAPPED, paired_sam_text)
from repro.pgas.cost_model import EDISON_LIKE

import numpy as np

BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)


def quality(sequence: str) -> str:
    return "I" * len(sequence)


def read(name: str, sequence: str) -> ReadRecord:
    return ReadRecord(name=name, sequence=sequence, quality=quality(sequence))


def run_paired(targets, reads, config, backend="cooperative", n_ranks=4):
    return PlanRunner(plan_for_workload("paired"), config).run(
        targets, reads, n_ranks=n_ranks, machine=MACHINE, backend=backend)


@pytest.fixture(scope="module")
def paired_dataset():
    spec = GenomeSpec(name="ptest", genome_length=12000, n_contigs=6,
                      repeat_fraction=0.02, repeat_unit_length=150,
                      min_contig_length=300)
    read_spec = ReadSetSpec(coverage=3.0, read_length=70, error_rate=0.01,
                            paired=True, insert_size=240, insert_sd=20)
    return make_dataset(spec, read_spec, seed=11)


@pytest.fixture(scope="module")
def paired_config():
    return AlignerConfig(seed_length=21, fragment_length=500, seed_stride=2)


class TestPairedIO:
    def test_interleaved_round_trip(self, tmp_path, paired_dataset):
        _genome, reads = paired_dataset
        path = tmp_path / "pairs.fastq"
        write_fastq(path, reads[:8])
        records = read_fastq_paired(path)
        assert [r.name for r in records] == [r.name for r in reads[:8]]

    def test_two_file_mode_interleaves(self, tmp_path, paired_dataset):
        _genome, reads = paired_dataset
        write_fastq(tmp_path / "r1.fastq", reads[0:8:2])
        write_fastq(tmp_path / "r2.fastq", reads[1:8:2])
        records = read_fastq_paired(tmp_path / "r1.fastq",
                                    tmp_path / "r2.fastq")
        assert [r.name for r in records] == [r.name for r in reads[:8]]

    def test_odd_interleaved_count_rejected(self, tmp_path, paired_dataset):
        _genome, reads = paired_dataset
        path = tmp_path / "odd.fastq"
        write_fastq(path, reads[:5])
        with pytest.raises(ValueError, match="even number"):
            read_fastq_paired(path)

    def test_mismatched_halves_rejected(self, tmp_path, paired_dataset):
        _genome, reads = paired_dataset
        write_fastq(tmp_path / "r1.fastq", reads[0:8:2])
        write_fastq(tmp_path / "r2.fastq", reads[1:6:2])
        with pytest.raises(ValueError, match="disagree"):
            read_fastq_paired(tmp_path / "r1.fastq", tmp_path / "r2.fastq")

    def test_two_file_seqdb_mode(self, tmp_path, paired_dataset):
        from repro.io.seqdb import records_to_seqdb
        _genome, reads = paired_dataset
        records_to_seqdb(tmp_path / "r1.seqdb", list(reads[0:8:2]))
        records_to_seqdb(tmp_path / "r2.seqdb", list(reads[1:8:2]))
        interleaved = normalize_paired_reads(tmp_path / "r1.seqdb",
                                             tmp_path / "r2.seqdb")
        assert [r.name for r in interleaved] == [r.name for r in reads[:8]]

    def test_normalize_paired_reads_records(self, paired_dataset):
        _genome, reads = paired_dataset
        assert normalize_paired_reads(reads[:6]) == list(reads[:6])
        interleaved = normalize_paired_reads(reads[0:8:2], reads[1:8:2])
        assert [r.name for r in interleaved] == [r.name for r in reads[:8]]
        with pytest.raises(ValueError, match="even"):
            normalize_paired_reads(reads[:3])
        with pytest.raises(ValueError, match="disagree"):
            normalize_paired_reads(reads[0:8:2], reads[1:6:2])


class TestPairedGenerator:
    def test_mates_interleaved_and_cross_linked(self, paired_dataset):
        _genome, reads = paired_dataset
        assert len(reads) % 2 == 0
        for r1, r2 in zip(reads[0::2], reads[1::2]):
            assert r1.name.endswith("/1") and r2.name.endswith("/2")
            assert r1.mate_of == r2.name and r2.mate_of == r1.name
            assert {r1.strand, r2.strand} == {"+", "-"}

    def test_insert_distribution_is_configurable(self):
        rng = np.random.default_rng(5)
        genome = random_dna(20000, rng=rng)
        spec = GenomeSpec(name="ins", genome_length=len(genome), n_contigs=1)
        synthetic = SyntheticGenome(spec=spec, genome=genome,
                                    contigs=[genome], contig_offsets=[0])
        read_spec = ReadSetSpec(coverage=2.0, read_length=80, error_rate=0.0,
                                paired=True, insert_size=500, insert_sd=30)
        reads = sample_paired_reads(synthetic, read_spec, rng)
        spans = []
        for r1, r2 in zip(reads[0::2], reads[1::2]):
            assert r1.contig_id == 0 and r2.contig_id == 0
            left = min(r1.position, r2.position)
            right = max(r1.position, r2.position) + read_spec.read_length
            spans.append(right - left)
        mean = sum(spans) / len(spans)
        assert 450 < mean < 550
        assert all(300 < span < 700 for span in spans)


class TestPlanValidation:
    def test_pair_stage_needs_paired_sink(self):
        with pytest.raises(PlanValidationError, match="paired sink"):
            AlignmentPlan(name="bad", stages=(
                BuildIndex(), ReadQueries(), ExactPath(), SeedLookup(),
                CandidateCollect(), ExtendAlign(), PairJoin(), EmitSam()))

    def test_per_read_stage_after_pair_stage_rejected(self):
        with pytest.raises(PlanValidationError, match="cannot follow"):
            AlignmentPlan(name="bad2", stages=(
                BuildIndex(), ReadQueries(), ExactPath(), SeedLookup(),
                CandidateCollect(), ExtendAlign(), PairJoin(), SeedLookup(),
                EmitSamPaired()))

    def test_paired_preset_validates(self):
        plan = AlignmentPlan.paired()
        assert plan.workload == "paired"
        assert plan.sink.group_size == 2
        assert [stage.name for stage in plan.pair_stages] == \
            ["pair_join", "mate_rescue"]

    def test_odd_read_count_rejected(self, paired_dataset, paired_config):
        genome, reads = paired_dataset
        with pytest.raises(ValueError, match="units of 2"):
            run_paired(genome.contigs, reads[:5], paired_config)


class TestMateRescue:
    """Edge cases of the insert-window rescue, on a hand-built contig."""

    K = 21
    L = 70
    INSERT = 240

    @pytest.fixture(scope="class")
    def contig(self):
        rng = np.random.default_rng(99)
        return random_dna(3000, rng=rng)

    def config(self, **kwargs):
        # fragment_length comfortably above the insert (as the 2000-base
        # default is) so the expected mate window lies inside the anchor's
        # fragment; MateRescue's search is fragment-bounded.
        base = dict(seed_length=self.K, fragment_length=1000,
                    insert_size=self.INSERT, insert_slack=60,
                    use_seed_index_cache=False, use_target_cache=False)
        base.update(kwargs)
        return AlignerConfig(**base)

    @staticmethod
    def corrupt_every(sequence: str, stride: int) -> str:
        """Substitute every *stride*-th base so no k-mer >= stride is clean."""
        flip = {"A": "C", "C": "G", "G": "T", "T": "A"}
        out = list(sequence)
        for i in range(0, len(sequence), stride):
            out[i] = flip[out[i]]
        return "".join(out)

    def pair_for(self, contig, start, mutate_mate=False, insert=None):
        insert = insert or self.INSERT
        r1_seq = contig[start:start + self.L]
        r2_start = start + insert - self.L
        r2_seq = reverse_complement(contig[r2_start:r2_start + self.L])
        if mutate_mate:
            # An error every 10 bases defeats every k=21 seed (and the exact
            # probe), but banded SW still scores far above the threshold.
            r2_seq = self.corrupt_every(r2_seq, 10)
        return [read("p/1", r1_seq), read("p/2", r2_seq)]

    def test_lost_mate_is_rescued(self, contig):
        reads = self.pair_for(contig, 400, mutate_mate=True)
        result = run_paired([contig], reads, self.config())
        counters = result.report.counters
        assert counters.mate_rescue_attempts == 1
        assert counters.mate_rescues == 1
        [record] = result.output
        assert record.rescued == 2
        assert record.n_mapped == 2
        assert record.proper
        # The rescued mate landed where the template puts it (within the
        # SW window's freedom).
        expected = 400 + self.INSERT - self.L
        assert abs(record.aln2.target_start - expected) <= 10

    def test_rescue_disabled_by_config(self, contig):
        reads = self.pair_for(contig, 400, mutate_mate=True)
        result = run_paired([contig], reads,
                            self.config(use_mate_rescue=False))
        counters = result.report.counters
        assert counters.mate_rescue_attempts == 0
        [record] = result.output
        assert record.n_mapped == 1 and record.rescued == 0

    def test_both_mates_missing_not_rescued(self, contig):
        rng = np.random.default_rng(123)
        foreign = random_dna(600, rng=rng)
        reads = [read("m/1", foreign[:self.L]),
                 read("m/2", reverse_complement(foreign[200:200 + self.L]))]
        result = run_paired([contig], reads, self.config())
        counters = result.report.counters
        assert counters.mate_rescue_attempts == 0
        assert counters.mate_rescues == 0
        [record] = result.output
        assert record.n_mapped == 0

    def test_rescue_window_clipped_at_contig_boundary(self, contig):
        # The anchor sits so close to the contig end that the expected mate
        # window extends past the boundary; the rescue must clip, not crash,
        # and the truncated mate still on-contig is found if it scores.
        start = len(contig) - self.INSERT + 30  # mate window runs off the end
        r1_seq = contig[start:start + self.L]
        beyond = contig[start + self.INSERT - self.L:]  # shorter than L
        # Off-contig tail plus an error every 10 bases: no clean seed
        # anywhere, so the mate is genuinely lost and only rescue can place
        # its on-contig prefix.
        r2_seq = self.corrupt_every(reverse_complement(
            (beyond + "ACGT" * self.L)[:self.L]), 10)
        result = run_paired([contig], [read("c/1", r1_seq),
                                       read("c/2", r2_seq)], self.config())
        counters = result.report.counters
        assert counters.mate_rescue_attempts == 1
        [record] = result.output
        assert record.aln1 is not None  # the anchor aligned
        # Whether the clipped mate scores is data-dependent; the invariant
        # is that clipping never produces an out-of-range coordinate.
        if record.aln2 is not None:
            assert 0 <= record.aln2.target_start <= len(contig)
            assert record.aln2.target_end <= len(contig)

    def test_insert_outlier_is_not_falsely_rescued(self, contig):
        # The mate's true locus is ~1200 bases beyond the expected window --
        # an insert-size outlier.  Rescue must not invent an alignment.
        reads = self.pair_for(contig, 400, mutate_mate=True, insert=1600)
        result = run_paired([contig], reads, self.config())
        counters = result.report.counters
        assert counters.mate_rescue_attempts == 1
        assert counters.mate_rescues == 0
        [record] = result.output
        assert record.rescued == 0
        assert record.aln2 is None

    def test_unmapped_pair_flags(self, contig):
        rng = np.random.default_rng(321)
        foreign = random_dna(400, rng=rng)
        reads = [read("u/1", foreign[:self.L]),
                 read("u/2", reverse_complement(foreign[100:100 + self.L]))]
        result = run_paired([contig], reads, self.config())
        text = paired_sam_text(result.output, ["c0"], [len(contig)])
        records = [line.split("\t") for line in text.splitlines()
                   if not line.startswith("@")]
        assert len(records) == 2
        for fields in records:
            flag = int(fields[1])
            assert flag & FLAG_PAIRED
            assert flag & FLAG_UNMAPPED and flag & FLAG_MATE_UNMAPPED
            assert not flag & FLAG_PROPER_PAIR
            assert fields[2] == "*" and fields[3] == "0"


def paired_sam(dataset, config, backend, bulk, n_reads=60):
    genome, reads = dataset
    cfg = config.with_(use_bulk_lookups=bulk, lookup_batch_size=8)
    result = PlanRunner(plan_for_workload("paired"), cfg).run(
        genome.contigs, reads[:n_reads], n_ranks=4, machine=MACHINE,
        backend=backend)
    names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
    return paired_sam_text(result.output, names,
                           [len(c) for c in genome.contigs])


class TestPairedByteIdentity:
    """Offline and served paired SAM: identical everywhere."""

    def test_backends_and_engines_agree(self, paired_dataset, paired_config):
        texts = {(backend, bulk): paired_sam(paired_dataset, paired_config,
                                             backend, bulk)
                 for backend in BACKENDS for bulk in (False, True)}
        reference = texts[("cooperative", False)]
        body = [line for line in reference.splitlines()
                if not line.startswith("@")]
        assert len(body) == 60  # two records per pair, every pair present
        for key, text in texts.items():
            assert text == reference, key

    def test_pair_flags_are_consistent(self, paired_dataset, paired_config):
        text = paired_sam(paired_dataset, paired_config, "cooperative", False)
        body = [line.split("\t") for line in text.splitlines()
                if not line.startswith("@")]
        proper = 0
        for first, second in zip(body[0::2], body[1::2]):
            flag1, flag2 = int(first[1]), int(second[1])
            assert flag1 & FLAG_PAIRED and flag2 & FLAG_PAIRED
            assert bool(flag1 & FLAG_PROPER_PAIR) == \
                bool(flag2 & FLAG_PROPER_PAIR)
            if flag1 & FLAG_PROPER_PAIR:
                proper += 1
                # Proper pairs: same reference, opposite TLEN signs.
                assert first[2] == second[2] or "=" in (first[6], second[6])
                assert int(first[8]) == -int(second[8]) != 0
        assert proper > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("bulk", (False, True))
    def test_served_matches_offline(self, paired_dataset, paired_config,
                                    backend, bulk):
        genome, reads = paired_dataset
        reads = reads[:40]
        offline = paired_sam((genome, reads), paired_config, backend, bulk,
                             n_reads=40)
        cfg = paired_config.with_(use_bulk_lookups=bulk, lookup_batch_size=8)
        names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
        with MerAligner(cfg).prepare(genome.contigs, n_ranks=4,
                                     machine=MACHINE, backend=backend,
                                     target_names=names) as session:
            served = session.paired_sam_for(session.align_paired(reads))
        assert served == offline

    def test_scheduler_coalesces_paired_requests(self, paired_dataset,
                                                 paired_config):
        from repro.service import RequestScheduler
        genome, reads = paired_dataset
        names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
        first, second = reads[:20], reads[20:44]
        offline = {
            "first": paired_sam((genome, first), paired_config,
                                "cooperative", False, n_reads=20),
            "second": paired_sam((genome, second), paired_config,
                                 "cooperative", False, n_reads=24),
        }
        with MerAligner(paired_config).prepare(
                genome.contigs, n_ranks=4, machine=MACHINE,
                target_names=names) as session:
            with RequestScheduler(session, max_wait_s=0.05) as scheduler:
                futures = [scheduler.submit(first, workload="paired"),
                           scheduler.submit(second, workload="paired"),
                           scheduler.submit(first, workload="paired")]
                results = [f.result(timeout=120.0) for f in futures]
        assert results[0].text == offline["first"]
        assert results[1].text == offline["second"]
        assert results[2].text == offline["first"]
        assert results[0].sam == results[0].text
        # Coalesced into one batch, demultiplexed per request.
        assert len({r.batch_id for r in results}) == 1
        assert results[0].counters.pairs_processed == 10
        assert results[1].counters.pairs_processed == 12
        for result in results:  # per-request counters stay self-consistent
            assert result.counters.mate_rescue_attempts >= \
                result.counters.mate_rescues

    def test_scheduler_rejects_odd_paired_submission(self, paired_dataset,
                                                     paired_config):
        from repro.service import RequestScheduler
        genome, reads = paired_dataset
        with MerAligner(paired_config).prepare(genome.contigs, n_ranks=4,
                                               machine=MACHINE) as session:
            with RequestScheduler(session, max_wait_s=0.005) as scheduler:
                with pytest.raises(ValueError, match="whole units"):
                    scheduler.submit(reads[:5], workload="paired")


class TestPairedServer:
    """The PAIRED wire verb end to end over a real socket."""

    def test_paired_verb_round_trip(self, paired_dataset, paired_config):
        import threading
        from repro.service import (AlignmentServer, RequestScheduler,
                                   SocketAlignmentClient)
        genome, reads = paired_dataset
        reads = reads[:20]
        names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
        offline = paired_sam((genome, reads), paired_config, "cooperative",
                             False, n_reads=20)
        with MerAligner(paired_config).prepare(
                genome.contigs, n_ranks=4, machine=MACHINE,
                target_names=names) as session:
            scheduler = RequestScheduler(session, max_wait_s=0.005)
            server = AlignmentServer(scheduler, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                client = SocketAlignmentClient(host=server.host,
                                               port=server.port, timeout=120.0)
                assert client.ping()
                assert client.paired_sam(reads) == offline
                assert client.workload_text("paired", reads) == offline
                from repro.service.client import ServiceError
                with pytest.raises(ServiceError, match="even"):
                    client.paired_sam(reads[:3])
            finally:
                server.shutdown()
                thread.join(timeout=30.0)
                scheduler.close()
