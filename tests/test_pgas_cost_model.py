"""Tests for the machine model and communication statistics."""

import pytest

from repro.pgas.cost_model import (
    CommStats,
    ComputeCosts,
    EDISON_LIKE,
    LAPTOP_LIKE,
    MachineModel,
)


class TestMachineModel:
    def test_node_mapping(self):
        machine = MachineModel(cores_per_node=4)
        assert machine.node_of(0) == 0
        assert machine.node_of(3) == 0
        assert machine.node_of(4) == 1
        assert machine.n_nodes(8) == 2
        assert machine.n_nodes(9) == 3

    def test_transfer_time_ordering(self):
        machine = EDISON_LIKE
        local = machine.transfer_time(1000, same_rank=True, same_node=True)
        on_node = machine.transfer_time(1000, same_rank=False, same_node=True)
        off_node = machine.transfer_time(1000, same_rank=False, same_node=False,
                                         n_nodes=10)
        assert local < on_node < off_node

    def test_transfer_time_monotone_in_bytes(self):
        machine = EDISON_LIKE
        small = machine.transfer_time(100, same_rank=False, same_node=False, n_nodes=4)
        large = machine.transfer_time(100_000, same_rank=False, same_node=False, n_nodes=4)
        assert large > small

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            EDISON_LIKE.transfer_time(-1, same_rank=True, same_node=True)

    def test_congestion_decreases_with_nodes(self):
        machine = EDISON_LIKE
        assert machine.congestion_factor(2) > machine.congestion_factor(64)
        assert machine.congestion_factor(10_000) == pytest.approx(1.0, abs=0.05)

    def test_congestion_makes_offnode_transfers_cheaper_at_scale(self):
        machine = EDISON_LIKE
        few_nodes = machine.transfer_time(10_000, same_rank=False, same_node=False,
                                          n_nodes=2)
        many_nodes = machine.transfer_time(10_000, same_rank=False, same_node=False,
                                           n_nodes=640)
        assert many_nodes < few_nodes

    def test_atomic_time_ordering(self):
        machine = EDISON_LIKE
        assert (machine.atomic_time(same_rank=True, same_node=True)
                < machine.atomic_time(same_rank=False, same_node=True)
                <= machine.atomic_time(same_rank=False, same_node=False))

    def test_barrier_scales_with_log_ranks(self):
        machine = EDISON_LIKE
        assert machine.barrier_time(2) < machine.barrier_time(1024)

    def test_with_cores_per_node(self):
        machine = EDISON_LIKE.with_cores_per_node(4)
        assert machine.cores_per_node == 4
        assert EDISON_LIKE.cores_per_node == 24  # original untouched

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)
        with pytest.raises(ValueError):
            MachineModel(bandwidth=0)

    def test_presets_differ(self):
        assert EDISON_LIKE.name != LAPTOP_LIKE.name
        assert LAPTOP_LIKE.off_node_latency <= EDISON_LIKE.off_node_latency


class TestComputeCosts:
    def test_all_costs_positive(self):
        costs = ComputeCosts()
        for field_name in ("sw_cell", "seed_extract", "seed_hash", "bucket_insert",
                           "lookup", "memcmp_byte", "base_copy", "io_byte"):
            assert getattr(costs, field_name) > 0


class TestCommStats:
    def test_record_and_categories(self):
        stats = CommStats()
        stats.record("x", 1.0)
        stats.record("x", 0.5)
        stats.record("y", 2.0)
        assert stats.time_by_category == {"x": 1.5, "y": 2.0}

    def test_messages_property(self):
        stats = CommStats(puts=2, gets=3, atomics=4)
        assert stats.messages == 9

    def test_total_time(self):
        stats = CommStats(comm_time=1.0, compute_time=2.0, io_time=0.5)
        assert stats.total_time == pytest.approx(3.5)

    def test_merge(self):
        a = CommStats(puts=1, bytes_put=10, comm_time=1.0)
        a.record("cat", 1.0)
        b = CommStats(puts=2, bytes_put=5, comm_time=0.5)
        b.record("cat", 2.0)
        merged = a.merge(b)
        assert merged.puts == 3
        assert merged.bytes_put == 15
        assert merged.comm_time == pytest.approx(1.5)
        assert merged.time_by_category["cat"] == pytest.approx(3.0)
        # originals untouched
        assert a.puts == 1 and b.puts == 2

    def test_aggregate(self):
        stats = [CommStats(gets=i) for i in range(5)]
        assert CommStats.aggregate(stats).gets == 10
        assert CommStats.aggregate([]).gets == 0
