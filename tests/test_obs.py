"""Tests for the observability layer (repro.obs) and its serving wiring.

Pins the contracts ISSUE 7 introduced:

* :class:`MetricsRegistry` thread-safety -- concurrent increments and
  observations (from plain threads *and* from threaded-backend SPMD ranks)
  produce exact totals, and a snapshot taken mid-flight never raises or
  tears (a histogram's buckets always sum to its count);
* histogram quantiles are derivable from the fixed buckets and ordered;
* Prometheus text exposition is well-formed;
* the scheduler/session/runtime/server wiring records into one registry and
  the ``METRICS`` wire verb (JSON and PROM) serves it, covering scheduler,
  session, backend, server and cache/comm counters;
* per-request trace spans land as JSONL with both wall and virtual marks;
* the ``SocketAlignmentClient`` STATS decode handles non-ASCII bytes
  (regression: it used to decode as ASCII);
* observability stays passive: serving with instrumentation produces SAM
  byte-identical to the offline run.
"""

import json
import socketserver
import threading

import pytest

from repro.core.pipeline import MerAligner
from repro.io.sam import sam_text
from repro.obs import MetricsRegistry, TraceLog, TraceSpan
from repro.obs.registry import percentile
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime
from repro.service import (AlignmentServer, RequestScheduler,
                           SocketAlignmentClient)
from repro.service.client import ServiceError

MACHINE = EDISON_LIKE.with_cores_per_node(2)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", verb="ALIGN").inc()
        registry.counter("requests_total", verb="ALIGN").inc(2)
        registry.counter("requests_total", verb="COUNT").inc()
        registry.gauge("active").set(3)
        registry.gauge("active").add(-1)
        hist = registry.histogram("latency_seconds")
        for value in (0.002, 0.004, 0.2):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["counters"]['requests_total{verb="ALIGN"}'] == 3
        assert snap["counters"]['requests_total{verb="COUNT"}'] == 1
        assert snap["gauges"]["active"] == 2
        latency = snap["histograms"]["latency_seconds"]
        assert latency["count"] == 3
        assert latency["sum"] == pytest.approx(0.206)
        assert latency["min"] == pytest.approx(0.002)
        assert latency["max"] == pytest.approx(0.2)
        # Bucket counts (including +Inf) always sum to the total count.
        assert sum(count for _bound, count in latency["buckets"]) == 3

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("n").inc(-1)

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x", label="v")
        b = registry.counter("x", label="v")
        assert a is b
        assert registry.counter("x", label="w") is not a

    def test_histogram_quantiles_ordered_and_plausible(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p95, p99 = (hist.quantile(q) for q in (0.50, 0.95, 0.99))
        assert 0 < p50 <= p95 <= p99 <= 0.25
        # The bucket containing the true median (50ms) bounds p50.
        assert 0.025 <= p50 <= 0.1
        assert hist.quantile(1.0) == pytest.approx(0.1)

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.99) == 0.0
        assert hist.mean == 0.0

    def test_concurrent_increments_produce_exact_totals(self):
        registry = MetricsRegistry()
        n_threads, n_increments = 8, 2000

        def hammer():
            counter = registry.counter("hits", kind="shared")
            hist = registry.histogram("obs")
            for _ in range(n_increments):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap["counters"]['hits{kind="shared"}'] == \
            n_threads * n_increments
        assert snap["histograms"]["obs"]["count"] == n_threads * n_increments

    def test_snapshot_mid_flight_never_tears(self):
        """Snapshots taken while writers hammer the registry are internally
        consistent: histogram buckets sum to the count, and counters only
        grow between snapshots."""
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            counter = registry.counter("events")
            hist = registry.histogram("lat")
            while not stop.is_set():
                counter.inc()
                hist.observe(0.01)

        def reader():
            last = 0
            while not stop.is_set():
                snap = registry.snapshot()
                hist = snap["histograms"].get("lat")
                if hist is not None:
                    bucket_total = sum(c for _b, c in hist["buckets"])
                    if bucket_total != hist["count"]:
                        errors.append(f"torn histogram: {bucket_total} != "
                                      f"{hist['count']}")
                value = snap["counters"].get("events", 0)
                if value < last:
                    errors.append(f"counter went backwards: {value} < {last}")
                last = value

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in writers + readers:
            thread.join()
        assert not errors, errors[:3]

    def test_threaded_backend_ranks_record_exact_totals(self):
        """SPMD ranks on the threaded backend (real OS threads) incrementing
        one shared registry produce exact totals."""
        registry = MetricsRegistry()
        runtime = PgasRuntime(n_ranks=4, machine=MACHINE)
        per_rank = 500

        def spmd(ctx):
            counter = registry.counter("rank_events")
            hist = registry.histogram("rank_obs")
            for _ in range(per_rank):
                counter.inc()
                hist.observe(0.001 * (ctx.me + 1))
            return ctx.me

        result = runtime.run_spmd(spmd, backend="threaded")
        assert sorted(result.results) == [0, 1, 2, 3]
        snap = registry.snapshot()
        assert snap["counters"]["rank_events"] == 4 * per_rank
        assert snap["histograms"]["rank_obs"]["count"] == 4 * per_rank

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", verb="ALIGN").inc(5)
        registry.gauge("active_connections").set(2)
        registry.histogram("latency_seconds",
                           bounds=(0.1, 1.0)).observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{verb="ALIGN"} 5' in text
        assert "# TYPE active_connections gauge" in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.05" in text
        assert "latency_seconds_count 1" in text

    def test_percentile_helper(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([1.0], 0.99) == 1.0


class TestTraceLog:
    def test_spans_append_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceLog(path) as log:
            for request_id in range(3):
                log.append(TraceSpan(
                    request_id=request_id, workload="align", n_reads=4,
                    batch_id=0, batch_requests=3, emitted_unix=1.0,
                    wall_enqueued=10.0, wall_batch_formed=10.1,
                    wall_executed=10.5, wall_demuxed=10.6,
                    virtual_enqueued=0.0, virtual_executed=2.0,
                    modeled_latency_s=2.0))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        span = json.loads(lines[0])
        assert span["request_id"] == 0
        assert span["queue_wait_s"] == pytest.approx(0.1)
        assert span["wall_latency_s"] == pytest.approx(0.6)
        assert span["virtual_executed"] == 2.0

    def test_closed_log_drops_silently(self, tmp_path):
        log = TraceLog(tmp_path / "trace.jsonl")
        log.close()
        log.append(TraceSpan(request_id=0, workload="align", n_reads=1,
                             batch_id=0, batch_requests=1, emitted_unix=0.0,
                             wall_enqueued=0.0, wall_batch_formed=0.0,
                             wall_executed=0.0, wall_demuxed=0.0,
                             virtual_enqueued=0.0, virtual_executed=0.0,
                             modeled_latency_s=0.0))  # must not raise
        assert not (tmp_path / "trace.jsonl").exists()


@pytest.fixture
def obs_service(small_dataset, small_config, tmp_path):
    """A served session with tracing enabled, plus its offline reference."""
    genome, reads = small_dataset
    config = small_config.with_(use_bulk_lookups=True, lookup_batch_size=16)
    names = [f"contig{i}" for i in range(len(genome.contigs))]
    lengths = [len(c) for c in genome.contigs]
    trace_path = tmp_path / "trace.jsonl"
    session = MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                         machine=MACHINE, target_names=names)
    scheduler = RequestScheduler(session, max_wait_s=0.01,
                                 trace_log=trace_path)
    server = AlignmentServer(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield (server, scheduler, trace_path,
               (genome, reads, config, names, lengths))
    finally:
        server.shutdown()
        thread.join(timeout=30.0)
        scheduler.close()
        session.close()


class TestServiceObservability:
    def test_metrics_verb_covers_every_layer(self, obs_service):
        server, scheduler, _trace_path, (genome, reads, config, names,
                                         lengths) = obs_service
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        request = reads[:16]
        reference = sam_text(
            MerAligner(config).run(genome.contigs, request, n_ranks=4,
                                   machine=MACHINE).alignments,
            names, lengths)
        # Observability is passive: served SAM matches the offline run.
        assert client.align_sam(request) == reference
        assert client.count_tsv(request)
        doc = client.metrics()
        assert doc["schema_version"] == 3
        counters = doc["metrics"]["counters"]
        histograms = doc["metrics"]["histograms"]
        # scheduler layer
        assert counters['scheduler_requests_total{workload="align"}'] == 1
        assert counters['scheduler_requests_total{workload="count"}'] == 1
        assert counters['scheduler_batches_total{workload="align"}'] == 1
        assert histograms["scheduler_queue_wait_seconds"]["count"] == 2
        assert histograms["scheduler_batch_occupancy"]["count"] == 2
        assert histograms[
            'scheduler_request_wall_seconds{workload="align"}']["count"] == 1
        # session layer
        assert counters['session_requests_total{workload="align"}'] == 1
        assert counters['session_reads_total{workload="align"}'] == 16
        assert histograms[
            'session_invocation_modeled_seconds{workload="align"}'
        ]["count"] == 1
        stage_series = [series for series in counters
                        if series.startswith("session_stage_modeled_seconds")]
        assert stage_series, "per-stage PhaseStats export missing"
        # backend layer (labelled by the SpmdResult label)
        assert counters[
            'backend_invocations_total{backend="cooperative",'
            'label="serve:align"}'] == 1
        assert histograms[
            'backend_invocation_wall_seconds{label="serve:align"}'
        ]["count"] == 1
        # server layer
        assert counters['server_requests_total{verb="ALIGN"}'] == 1
        assert counters['server_requests_total{verb="COUNT"}'] == 1
        assert counters["server_connections_total"] >= 2
        assert counters["server_bytes_in_total"] > 0
        assert counters["server_bytes_out_total"] > 0
        # unified modelled-domain counters ride along
        assert doc["comm"]["gets"] > 0
        assert doc["caches"], "cache statistics missing from METRICS"
        assert doc["service"]["requests"] == 2
        assert doc["session"]["requests_served"] == 2

    def test_metrics_prom_exposition_over_the_wire(self, obs_service):
        server, _scheduler, _trace_path, (_genome, reads, _config, _names,
                                          _lengths) = obs_service
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        client.align_sam(reads[:8])
        text = client.metrics_text()
        assert "# TYPE scheduler_requests_total counter" in text
        assert 'scheduler_requests_total{workload="align"} 1' in text
        assert "scheduler_queue_wait_seconds_count 1" in text
        # The ?format=prom spelling works too.
        raw = client._roundtrip("METRICS ?format=prom").decode("utf-8")
        assert "# TYPE scheduler_requests_total counter" in raw
        with pytest.raises(ServiceError, match="usage: METRICS"):
            client._roundtrip("METRICS bogus")

    def test_stats_gained_p99_and_window(self, obs_service):
        server, _scheduler, _trace_path, (_genome, reads, _config, _names,
                                          _lengths) = obs_service
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        client.align_sam(reads[:8])
        stats = client.stats()
        service = stats["service"]
        assert stats["schema_version"] == 3
        assert service["latency_sample_window"] == 4096
        for key in ("p99_modeled_latency", "p99_wall_latency"):
            assert key in service
        assert service["p50_wall_latency"] <= service["p95_wall_latency"] \
            <= service["p99_wall_latency"]

    def test_trace_spans_written_per_request(self, obs_service):
        server, _scheduler, trace_path, (_genome, reads, _config, _names,
                                         _lengths) = obs_service
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        client.align_sam(reads[:8])
        client.count_tsv(reads[:4])
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 2
        spans = [json.loads(line) for line in lines]
        assert {span["workload"] for span in spans} == {"align", "count"}
        for span in spans:
            assert span["wall_enqueued"] <= span["wall_batch_formed"] \
                <= span["wall_executed"] <= span["wall_demuxed"]
            assert span["queue_wait_s"] >= 0
            assert span["modeled_latency_s"] > 0
            # Virtual time advanced across the invocation.
            assert span["virtual_executed"] > span["virtual_enqueued"]

    def test_scheduler_always_has_a_registry(self, small_dataset,
                                             small_config):
        genome, _reads = small_dataset
        session = MerAligner(small_config).prepare(genome.contigs, n_ranks=2,
                                                   machine=MACHINE)
        scheduler = RequestScheduler(session, max_wait_s=0.0)
        try:
            assert isinstance(scheduler.metrics, MetricsRegistry)
            # Attached through to the session and the resident runtime.
            assert session.metrics is scheduler.metrics
            assert session.prepared.runtime.metrics is scheduler.metrics
        finally:
            scheduler.close()
            session.close()


class TestStatsUtf8Regression:
    def test_stats_decodes_non_ascii_payload(self):
        """Regression: STATS used to be decoded as ASCII and broke on any
        non-ASCII byte (e.g. reference names in session summaries)."""
        payload = json.dumps({"session": {"index": {"name": "contig-é"}}},
                             ensure_ascii=False).encode("utf-8")

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                line = self.rfile.readline().decode("ascii").strip()
                assert line == "STATS"
                self.wfile.write(f"OK {len(payload)}\n".encode("ascii"))
                self.wfile.write(payload)

        with socketserver.TCPServer(("127.0.0.1", 0), Handler) as stub:
            thread = threading.Thread(target=stub.serve_forever, daemon=True)
            thread.start()
            try:
                client = SocketAlignmentClient(port=stub.server_address[1],
                                               timeout=30.0)
                stats = client.stats()
                assert stats["session"]["index"]["name"] == "contig-é"
            finally:
                stub.shutdown()
                thread.join(timeout=10.0)
