"""Tests for the persistent alignment service.

Pins the serving-path contracts of the session / scheduler / server stack:

* the index is built exactly once per session -- a second ``align()`` call
  performs zero index-construction stores, and its off-node get count is
  exactly that of a fresh one-shot run of the same reads (amortization is
  real, not cached results);
* per-request stats isolation -- every ``align()`` report carries only its
  own phase/communication/cache deltas (the PR 1 per-invocation-delta fix,
  extended to resident sessions);
* cross-backend service equivalence -- interleaved client requests through
  the micro-batching scheduler produce byte-identical SAM to one-shot runs of
  the same reads, for the cooperative/threaded/process backends with bulk
  lookups on and off;
* the socket server's line protocol (PING/ALIGN/STATS/SHUTDOWN).
"""

import threading

import pytest

from repro.core.pipeline import MerAligner
from repro.io.sam import sam_text
from repro.pgas.cost_model import EDISON_LIKE
from repro.service import (AlignmentClient, AlignmentServer, RequestScheduler,
                           SocketAlignmentClient)
from repro.service.client import ServiceError
from repro.service.session import one_shot_read_order

BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)


def one_shot_sam(config, contigs, reads, names, lengths, backend="cooperative"):
    """The offline reference: ``MerAligner.run`` + SAM text."""
    report = MerAligner(config).run(contigs, reads, n_ranks=4,
                                    machine=MACHINE, backend=backend)
    return sam_text(report.alignments, names, lengths)


@pytest.fixture
def service_setup(small_dataset, small_config):
    genome, reads = small_dataset
    config = small_config.with_(use_bulk_lookups=True, lookup_batch_size=16)
    names = [f"contig{i}" for i in range(len(genome.contigs))]
    lengths = [len(c) for c in genome.contigs]
    return genome, reads, config, names, lengths


class TestSessionAmortization:
    """Acceptance: index built exactly once per session."""

    def test_second_align_performs_zero_index_stores(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        reads = reads[:60]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            keys_before = session.prepared.seed_index.n_keys
            session.align(reads)
            second = session.align(reads)
            # The aligning phases are pure gets: any put or atomic would mean
            # index construction leaked into the serving path.
            assert second.total_stats.puts == 0
            assert second.total_stats.atomics == 0
            assert session.prepared.seed_index.n_keys == keys_before
            assert [p.name for p in second.phases] == ["read_queries",
                                                       "align_reads"]

    def test_amortization_is_real_not_cached_results(self, service_setup):
        """The second request's off-node gets equal a fresh one-shot run's
        aligning-phase off-node gets: the communication is re-done per
        request, only the index build is amortized."""
        genome, reads, config, _names, _lengths = service_setup
        reads = reads[:60]
        aligner = MerAligner(config)
        with aligner.prepare(genome.contigs, n_ranks=4,
                             machine=MACHINE) as session:
            session.align(reads)
            second = session.align(reads)
            build = session.prepared.build_stats
        one_shot = aligner.run(genome.contigs, reads, n_ranks=4,
                               machine=MACHINE)
        # One-shot = build + align, exactly, for message counts and bytes.
        total = one_shot.total_stats
        assert second.total_stats.off_node_ops == \
            total.off_node_ops - build.off_node_ops
        assert second.total_stats.gets == total.gets - build.gets
        assert second.total_stats.bytes_get == total.bytes_get - build.bytes_get
        assert second.total_stats.off_node_ops > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_align_sam_matches_one_shot_on_every_backend(self, service_setup,
                                                         backend):
        genome, reads, config, names, lengths = service_setup
        reads = reads[:40]
        reference = one_shot_sam(config, genome.contigs, reads, names, lengths)
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE, backend=backend,
                                        target_names=names) as session:
            for _ in range(2):
                report = session.align(reads)
                assert session.sam_for(report.alignments) == reference, backend

    def test_closed_session_rejects_requests(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        session = MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                             machine=MACHINE)
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.align(reads[:5])


class TestPerRequestStatsIsolation:
    """Satellite bugfix: a second ``align()`` reports only its own deltas."""

    def test_counters_and_stats_identical_across_repeats(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        reads = reads[:50]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            first = session.align(reads)
            second = session.align(reads)
        assert second.counters == first.counters
        for field in ("puts", "gets", "bytes_get", "bytes_put", "barriers",
                      "off_node_ops", "on_node_ops", "local_ops"):
            assert getattr(second.total_stats, field) == \
                getattr(first.total_stats, field), field
        assert second.total_time == pytest.approx(first.total_time)

    def test_cache_stats_are_per_request_deltas(self, service_setup):
        """Regression: cumulative cache stats would double on the second
        call; per-request deltas are identical call to call."""
        genome, reads, config, _names, _lengths = service_setup
        reads = reads[:50]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            first = session.align(reads)
            second = session.align(reads)
        assert set(second.cache_stats) == {"seed_index", "target"}
        for name in second.cache_stats:
            assert second.cache_stats[name].lookups > 0
            assert second.cache_stats[name].hits == first.cache_stats[name].hits
            assert second.cache_stats[name].misses == \
                first.cache_stats[name].misses


class TestMicroBatchDemultiplexing:
    """Satellite: coalesced requests demultiplex to one-shot-identical SAM."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("bulk_lookups", [False, True])
    def test_cross_backend_equivalence(self, service_setup, backend,
                                       bulk_lookups):
        genome, reads, config, names, lengths = service_setup
        config = config.with_(use_bulk_lookups=bulk_lookups)
        requests = [reads[:20], reads[20:35], reads[35:45]]
        references = [one_shot_sam(config, genome.contigs, request,
                                   names, lengths)
                      for request in requests]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE,
                                        backend=backend) as session:
            outcome = session.align_many(requests)
            for request, alignments, reference in zip(
                    requests, outcome.per_request_alignments, references):
                observed = sam_text(alignments, names, lengths)
                assert observed == reference, (backend, bulk_lookups)

    def test_per_request_counters_partition_the_batch(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        requests = [reads[:20], reads[20:35], reads[35:45]]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            outcome = session.align_many(requests)
        assert [c.reads_processed for c in outcome.per_request_counters] == \
            [len(request) for request in requests]
        assert sum(c.alignments_reported
                   for c in outcome.per_request_counters) == \
            outcome.counters.alignments_reported
        assert sum(c.reads_aligned for c in outcome.per_request_counters) == \
            outcome.counters.reads_aligned
        assert sum(c.exact_path_hits for c in outcome.per_request_counters) == \
            outcome.counters.exact_path_hits

    def test_one_shot_read_order_matches_run(self, service_setup):
        """`one_shot_read_order` reproduces the *processing* permutation
        (a pure load-balancing device); sink output stays in input order."""
        genome, reads, config, _names, _lengths = service_setup
        sample = reads[:15]
        order = one_shot_read_order(len(sample), config)
        assert sorted(order) == list(range(len(sample)))
        without = one_shot_read_order(4, config.with_(permute_reads=False))
        assert without == [0, 1, 2, 3]


class TestBackendResidency:
    """The backend keeps its rank machinery alive between invocations."""

    def test_threaded_session_parks_resident_rank_threads(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE,
                                        backend="threaded") as session:
            pool = session.prepared.runtime._threaded_session
            assert pool is not None
            threads = list(pool._threads)
            assert len(threads) == 4
            assert all(thread.is_alive() for thread in threads)
            session.align(reads[:10])
            session.align(reads[:10])
            # The same parked threads served both invocations.
            assert list(pool._threads) == threads
            assert all(thread.is_alive() for thread in threads)
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_process_session_keeps_promotions_mapped(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        session = MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                             machine=MACHINE,
                                             backend="process")
        resident = session.prepared.runtime._process_session
        assert resident is not None
        assert resident.registry, "expected promoted SharedArray segments"
        mapped_before = set(resident.registry)
        session.align(reads[:10])
        session.align(reads[:10])
        # Promotions survived both invocations instead of being rebuilt.
        assert set(resident.registry) >= mapped_before
        session.close()
        assert resident.closed
        assert not resident.registry


class TestRequestScheduler:
    def test_interleaved_clients_get_one_shot_identical_sam(self,
                                                            service_setup):
        genome, reads, config, names, lengths = service_setup
        requests = [reads[i * 12:(i + 1) * 12] for i in range(5)]
        references = [one_shot_sam(config, genome.contigs, request,
                                   names, lengths)
                      for request in requests]
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE,
                                        target_names=names) as session:
            with RequestScheduler(session, max_batch_requests=4,
                                  max_wait_s=0.05) as scheduler:
                results: dict[int, object] = {}

                def client(index: int) -> None:
                    results[index] = scheduler.align(requests[index],
                                                     timeout=120.0)

                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(len(requests))]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120.0)
                stats = scheduler.stats()
        assert len(results) == len(requests)
        for index, reference in enumerate(references):
            assert results[index].sam == reference, index
        assert stats.requests == len(requests)
        assert 1 <= stats.batches <= len(requests)
        assert stats.batch_occupancy >= 1.0
        assert stats.reads == sum(len(request) for request in requests)
        assert stats.p95_modeled_latency >= stats.p50_modeled_latency > 0.0

    def test_request_results_carry_batch_accounting(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            with RequestScheduler(session, max_wait_s=0.0) as scheduler:
                result = scheduler.align(reads[:15], timeout=120.0)
        assert result.batch_requests == 1
        assert result.batch_reads == 15
        assert result.counters.reads_processed == 15
        assert result.batch_stats.gets > 0
        assert [p.name for p in result.batch_phases] == ["read_queries",
                                                         "align_reads"]
        assert result.modeled_latency > 0.0
        assert result.wall_latency >= 0.0

    def test_submit_after_close_raises(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            scheduler = RequestScheduler(session)
            scheduler.close()
            with pytest.raises(RuntimeError, match="closed"):
                scheduler.submit(reads[:5])

    def test_stats_json_shape(self, service_setup):
        genome, reads, config, _names, _lengths = service_setup
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE) as session:
            with RequestScheduler(session, max_wait_s=0.0) as scheduler:
                scheduler.align(reads[:10], timeout=120.0)
                data = scheduler.stats().to_json_dict()
        assert data["requests"] == 1
        assert data["batches"] == 1
        assert data["batch_occupancy"] == 1.0
        for key in ("p50_modeled_latency", "p95_modeled_latency",
                    "p50_wall_latency", "p95_wall_latency", "alignments"):
            assert key in data


class TestAlignmentClient:
    def test_in_process_client(self, service_setup):
        genome, reads, config, names, lengths = service_setup
        request = reads[:18]
        reference = one_shot_sam(config, genome.contigs, request, names,
                                 lengths)
        with MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                        machine=MACHINE,
                                        target_names=names) as session:
            with AlignmentClient(session) as client:
                assert client.align_sam(request, timeout=120.0) == reference
                assert client.stats().requests == 1

    def test_client_type_validation(self):
        with pytest.raises(TypeError):
            AlignmentClient(object())


class TestAlignmentServer:
    @pytest.fixture
    def running_server(self, service_setup):
        genome, reads, config, names, lengths = service_setup
        session = MerAligner(config).prepare(genome.contigs, n_ranks=4,
                                             machine=MACHINE,
                                             target_names=names)
        scheduler = RequestScheduler(session, max_wait_s=0.01)
        server = AlignmentServer(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, thread, (genome, reads, config, names, lengths)
        finally:
            server.shutdown()
            thread.join(timeout=30.0)
            scheduler.close()
            session.close()

    def test_socket_roundtrip(self, running_server):
        server, _thread, (genome, reads, config, names, lengths) = \
            running_server
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        assert client.ping()
        request = reads[:16]
        reference = one_shot_sam(config, genome.contigs, request, names,
                                 lengths)
        assert client.align_sam(request) == reference
        assert client.align_sam(request) == reference
        stats = client.stats()
        assert stats["service"]["requests"] == 2
        assert stats["session"]["requests_served"] == 2
        assert stats["session"]["index"]["seed_index_keys"] > 0

    def test_protocol_errors_keep_connection_alive(self, running_server):
        server, _thread, _setup = running_server
        client = SocketAlignmentClient(port=server.port, timeout=30.0)
        with pytest.raises(ServiceError, match="unknown command"):
            client._roundtrip("FROBNICATE")
        with pytest.raises(ServiceError, match="usage"):
            client._roundtrip("ALIGN lots")
        assert client.ping()

    def test_malformed_payload_does_not_desync_connection(self, running_server):
        """Regression: a bad record mid-payload must not leave unread payload
        lines to be misread as commands on the same connection."""
        import socket
        server, _thread, _setup = running_server
        payload = (b"ALIGN 2\n"
                   b"@r1\nACGT\nBAD_SEPARATOR\nIIII\n"   # malformed separator
                   b"@r2\nACGT\n+\nIIII\n")              # still consumed
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=30.0) as conn:
            conn.sendall(payload)
            with conn.makefile("rb") as rfile:
                first = rfile.readline().decode("ascii")
                assert first.startswith("ERR"), first
                assert "separator" in first
                # Same connection, next command: must answer cleanly.
                conn.sendall(b"PING\n")
                assert rfile.readline().decode("ascii").strip() == "OK 0"
        # Header of just "@" reports a protocol error, not an IndexError.
        client = SocketAlignmentClient(port=server.port, timeout=30.0)
        with pytest.raises(ServiceError, match="malformed FASTQ header"):
            client._roundtrip("ALIGN 1", b"@\nACGT\n+\nIIII\n")

    def test_shutdown_command_stops_server(self, running_server):
        server, thread, _setup = running_server
        client = SocketAlignmentClient(port=server.port, timeout=30.0)
        client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert not client.ping()
