"""Tests for the distributed hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashtable.cache import SoftwareCache
from repro.hashtable.distributed import DistributedHashTable
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


@pytest.fixture
def runtime():
    return PgasRuntime(n_ranks=4, machine=EDISON_LIKE.with_cores_per_node(2))


@pytest.fixture
def table(runtime):
    return DistributedHashTable(runtime, buckets_per_rank=64)


class TestOwnership:
    def test_owner_in_range(self, table):
        for key in ("AAA", "ACG", "TTT", "GAT"):
            assert 0 <= table.owner_of(key) < 4

    def test_owner_deterministic(self, table):
        assert table.owner_of("ACGT") == table.owner_of("ACGT")

    def test_custom_hash_fn(self, runtime):
        table = DistributedHashTable(runtime, segment="custom",
                                     hash_fn=lambda key: 3)
        assert table.owner_of("anything") == 3


class TestInsertLookup:
    def test_direct_insert_and_lookup(self, runtime, table):
        ctx = runtime.contexts[0]
        table.insert_direct(ctx, "ACG", ("frag", 5))
        entry = table.lookup(ctx, "ACG")
        assert entry.values == [("frag", 5)]
        assert entry.count == 1
        assert table.count(ctx, "ACG") == 1

    def test_lookup_missing(self, runtime, table):
        assert table.lookup(runtime.contexts[1], "GGG") is None
        assert table.count(runtime.contexts[1], "GGG") == 0

    def test_insert_goes_to_owner_partition(self, runtime, table):
        ctx = runtime.contexts[0]
        table.insert_direct(ctx, "ACGTT", 1)
        owner = table.owner_of("ACGTT")
        assert table.local_store(owner).lookup("ACGTT") is not None
        for rank in range(4):
            if rank != owner:
                assert table.local_store(rank).lookup("ACGTT") is None

    def test_insert_local_requires_ownership(self, runtime, table):
        key = "ACGTA"
        owner = table.owner_of(key)
        other = (owner + 1) % 4
        table.insert_local(runtime.contexts[owner], key, 1)
        with pytest.raises(ValueError):
            table.insert_local(runtime.contexts[other], key, 2)

    def test_direct_insert_charges_lock_and_put(self, runtime, table):
        ctx = runtime.contexts[0]
        table.insert_direct(ctx, "ACGAC", 1)
        assert ctx.stats.atomics == 1
        assert ctx.stats.puts == 1

    def test_lookup_charges_get(self, runtime, table):
        ctx = runtime.contexts[0]
        table.insert_direct(ctx, "AAAAA", 1)
        gets_before = ctx.stats.gets
        table.lookup(ctx, "AAAAA")
        assert ctx.stats.gets == gets_before + 1

    @given(st.lists(st.tuples(st.text(alphabet="ACGT", min_size=3, max_size=8),
                              st.integers(0, 100)), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, pairs):
        runtime = PgasRuntime(n_ranks=3, machine=EDISON_LIKE)
        table = DistributedHashTable(runtime, buckets_per_rank=32)
        ctx = runtime.contexts[0]
        reference: dict[str, list[int]] = {}
        for key, value in pairs:
            table.insert_direct(ctx, key, value)
            reference.setdefault(key, []).append(value)
        assert table.as_dict() == reference
        assert table.n_keys == len(reference)
        assert table.n_values == len(pairs)


class TestCachedLookups:
    def test_cache_hit_avoids_offnode_traffic(self, runtime, table):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20, name="seed")
        writer = runtime.contexts[0]
        # Find a key owned by a rank on the other node relative to rank 0.
        from itertools import product
        key = next("".join(bases) for bases in product("ACGT", repeat=4)
                   if not writer.same_node(table.owner_of("".join(bases))))
        table.insert_direct(writer, key, 42)
        reader = runtime.contexts[1]  # same node as rank 0
        off_before = reader.stats.off_node_ops
        first = table.lookup(reader, key, cache=cache)
        assert reader.stats.off_node_ops > off_before
        off_after_miss = reader.stats.off_node_ops
        second = table.lookup(reader, key, cache=cache)
        assert second is first or second.values == first.values
        assert reader.stats.off_node_ops == off_after_miss  # served by the cache
        assert cache.total_stats().hits == 1

    def test_local_lookup_bypasses_cache(self, runtime, table):
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20)
        key = "ACGTC"
        owner = table.owner_of(key)
        ctx = runtime.contexts[owner]
        table.insert_direct(ctx, key, 1)
        table.lookup(ctx, key, cache=cache)
        assert cache.total_stats().lookups == 0


class TestLookupMany:
    def _fill(self, runtime, table, n=40):
        writer = runtime.contexts[0]
        keys = []
        from itertools import product
        for bases in product("ACGT", repeat=3):
            keys.append("".join(bases))
        keys = keys[:n]
        for index, key in enumerate(keys):
            table.insert_direct(writer, key, index)
        return keys

    def test_entries_match_fine_grained_lookup(self, runtime, table):
        keys = self._fill(runtime, table)
        probe = keys + ["GGGGG", keys[0], "TTTTT"]  # misses and a repeat
        ctx = runtime.contexts[1]
        batched = table.lookup_many(ctx, probe)
        fine = [table.lookup(runtime.contexts[2], key) for key in probe]
        assert len(batched) == len(probe)
        for got, want in zip(batched, fine):
            if want is None:
                assert got is None
            else:
                assert got.key == want.key and got.values == want.values

    def test_one_aggregate_get_per_remote_owner(self, runtime, table):
        keys = self._fill(runtime, table)
        ctx = runtime.contexts[1]
        remote_owners = {table.owner_of(key) for key in keys} - {ctx.me}
        local_keys = [key for key in keys if table.owner_of(key) == ctx.me]
        ctx.stats.gets = 0
        table.lookup_many(ctx, keys)
        # One aggregate message per remote owner plus one 0-byte local get
        # per locally owned key (same as the fine-grained path charges).
        assert ctx.stats.gets == len(remote_owners) + len(local_keys)
        assert ctx.stats.bulk_gets == len(remote_owners)

    def test_duplicate_keys_ride_the_aggregate_once(self, runtime, table):
        keys = self._fill(runtime, table)
        remote = next(key for key in keys
                      if table.owner_of(key) != runtime.contexts[1].me)
        ctx = runtime.contexts[1]
        table.lookup_many(ctx, [remote] * 10)
        assert ctx.stats.bulk_gets == 1
        assert ctx.stats.bulk_items == 1  # deduplicated within the batch

    def test_cache_counters_match_fine_grained_order(self, runtime, table):
        keys = self._fill(runtime, table)
        probe = keys + keys[:10]  # second pass over a prefix -> cache hits
        cache_a = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20)
        cache_b = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20)
        table.lookup_many(runtime.contexts[1], probe, cache=cache_a)
        for key in probe:
            table.lookup(runtime.contexts[1], key, cache=cache_b)
        batched, fine = cache_a.total_stats(), cache_b.total_stats()
        assert (batched.hits, batched.misses, batched.insertions,
                batched.evictions) == (fine.hits, fine.misses,
                                       fine.insertions, fine.evictions)

    def test_batched_lookup_cheaper_than_fine_grained(self, runtime, table):
        keys = self._fill(runtime, table)
        batched_ctx, fine_ctx = runtime.contexts[1], runtime.contexts[3]
        table.lookup_many(batched_ctx, keys)
        for key in keys:
            table.lookup(fine_ctx, key)
        assert batched_ctx.stats.comm_time < fine_ctx.stats.comm_time

    def test_empty_batch(self, runtime, table):
        assert table.lookup_many(runtime.contexts[0], []) == []


class TestBalance:
    def test_keys_spread_over_ranks(self, runtime, table):
        ctx = runtime.contexts[0]
        from repro.dna.sequence import random_dna
        from repro.dna.kmer import extract_kmers
        import numpy as np
        seq = random_dna(3000, rng=np.random.default_rng(1))
        for kmer in set(extract_kmers(seq, 12)):
            table.insert_direct(ctx, kmer, 0)
        per_rank = table.keys_per_rank()
        assert sum(per_rank) == table.n_keys
        assert min(per_rank) > 0
        assert max(per_rank) < 1.5 * (table.n_keys / 4)
