"""Tests for the distributed target store and target fragmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.target_store import TargetStore, fragment_target
from repro.dna.kmer import extract_kmers
from repro.dna.sequence import random_dna
from repro.hashtable.cache import SoftwareCache
from repro.pgas.cost_model import EDISON_LIKE
from repro.pgas.runtime import PgasRuntime


@pytest.fixture
def runtime():
    return PgasRuntime(n_ranks=4, machine=EDISON_LIKE.with_cores_per_node(2))


class TestFragmentTarget:
    def test_short_target_unfragmented(self):
        assert fragment_target(0, "ACGT" * 10, fragment_length=100, seed_length=5) == \
            [(0, "ACGT" * 10)]

    def test_empty_target(self):
        assert fragment_target(0, "", 100, 5) == []

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            fragment_target(0, "ACGT", fragment_length=5, seed_length=5)

    def test_fragments_cover_target(self, rng):
        target = random_dna(1000, rng=rng)
        fragments = fragment_target(0, target, fragment_length=200, seed_length=21)
        assert fragments[0][0] == 0
        assert fragments[-1][0] + len(fragments[-1][1]) == len(target)
        for offset, piece in fragments:
            assert target[offset:offset + len(piece)] == piece

    def test_seed_sets_disjoint_and_complete(self, rng):
        """Union of fragment seed multisets == target seed multiset (section IV-A)."""
        k = 11
        target = random_dna(600, rng=rng)
        fragments = fragment_target(0, target, fragment_length=150, seed_length=k)
        fragment_seeds = []
        for offset, piece in fragments:
            fragment_seeds.extend((offset + i, kmer)
                                  for i, kmer in enumerate(extract_kmers(piece, k)))
        target_seeds = [(i, kmer) for i, kmer in enumerate(extract_kmers(target, k))]
        assert sorted(fragment_seeds) == sorted(target_seeds)

    @given(st.integers(min_value=30, max_value=400),
           st.integers(min_value=25, max_value=60),
           st.integers(min_value=5, max_value=21))
    @settings(max_examples=40, deadline=None)
    def test_property_disjoint_complete(self, length, fragment_length, k):
        if fragment_length <= k:
            fragment_length = k + 1
        import numpy as np
        target = random_dna(length, rng=np.random.default_rng(length))
        fragments = fragment_target(0, target, fragment_length, k)
        positions = []
        for offset, piece in fragments:
            positions.extend(offset + i for i in range(max(0, len(piece) - k + 1)))
        assert positions == list(range(max(0, len(target) - k + 1)))


class TestTargetStore:
    def test_store_and_fetch_local(self, runtime):
        store = TargetStore(runtime)
        ctx = runtime.contexts[1]
        record = store.store_fragment(ctx, 10, target_id=3, parent_offset=0,
                                      sequence="ACGTACGTAA")
        pointer = store.directory[10].pointer
        fetched = store.fetch(ctx, pointer)
        assert fetched is record
        assert fetched.sequence() == "ACGTACGTAA"
        assert fetched.parent_target_id == 3

    def test_fetch_remote_charges_offnode(self, runtime):
        store = TargetStore(runtime)
        owner_ctx = runtime.contexts[3]
        store.store_fragment(owner_ctx, 1, 0, 0, "ACGT" * 50)
        pointer = store.directory[1].pointer
        reader = runtime.contexts[0]  # different node (ppn=2)
        before = reader.stats.off_node_ops
        store.fetch(reader, pointer)
        assert reader.stats.off_node_ops == before + 1
        assert reader.stats.bytes_get >= 50  # compressed fragment

    def test_fetch_through_cache(self, runtime):
        store = TargetStore(runtime)
        owner_ctx = runtime.contexts[3]
        store.store_fragment(owner_ctx, 1, 0, 0, "ACGT" * 50)
        pointer = store.directory[1].pointer
        cache = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20, name="target")
        reader = runtime.contexts[0]
        store.fetch(reader, pointer, cache=cache)
        off_after_miss = reader.stats.off_node_ops
        store.fetch(reader, pointer, cache=cache)
        assert reader.stats.off_node_ops == off_after_miss
        assert cache.total_stats().hits == 1

    def test_fetch_many_matches_fine_grained_records(self, runtime):
        store = TargetStore(runtime)
        for rank in range(4):
            store.store_fragment(runtime.contexts[rank], rank, rank, 0,
                                 "ACGT" * (10 + rank))
        pointers = [store.directory[i].pointer for i in (3, 0, 2, 1, 3)]
        reader = runtime.contexts[0]
        records = store.fetch_many(reader, pointers)
        fine = [store.fetch(runtime.contexts[1], p) for p in pointers]
        assert [r.fragment_id for r in records] == [f.fragment_id for f in fine]
        assert [r.sequence() for r in records] == [f.sequence() for f in fine]

    def test_fetch_many_one_aggregate_per_remote_owner(self, runtime):
        store = TargetStore(runtime)
        for rank in range(4):
            for i in range(3):
                store.store_fragment(runtime.contexts[rank], rank * 10 + i,
                                     0, 0, "ACGT" * 25)
        reader = runtime.contexts[0]
        pointers = [store.directory[rank * 10 + i].pointer
                    for rank in range(4) for i in range(3)]
        store.fetch_many(reader, pointers)
        # 3 remote owners -> 3 aggregate gets; 3 local fragments -> 3 cheap
        # 0-byte local gets (matching what the fine-grained path charges).
        assert reader.stats.bulk_gets == 3
        assert reader.stats.bulk_items == 9
        assert reader.stats.gets == 3 + 3

    def test_fetch_many_dedupes_repeated_fragments(self, runtime):
        store = TargetStore(runtime)
        store.store_fragment(runtime.contexts[3], 1, 0, 0, "ACGT" * 50)
        pointer = store.directory[1].pointer
        reader = runtime.contexts[0]
        records = store.fetch_many(reader, [pointer] * 8)
        assert len(records) == 8
        assert reader.stats.bulk_items == 1
        assert reader.stats.bytes_get == records[0].nbytes

    def test_fetch_many_cache_counters_match_fine_grained(self, runtime):
        store = TargetStore(runtime)
        for i in range(6):
            store.store_fragment(runtime.contexts[3], i, 0, 0, "ACGT" * (20 + i))
        pointers = [store.directory[i].pointer for i in (0, 1, 2, 0, 3, 4, 5, 2)]
        cache_a = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20)
        cache_b = SoftwareCache(runtime, capacity_bytes_per_node=1 << 20)
        store.fetch_many(runtime.contexts[0], pointers, cache=cache_a)
        for pointer in pointers:
            store.fetch(runtime.contexts[0], pointer, cache=cache_b)
        batched, fine = cache_a.total_stats(), cache_b.total_stats()
        assert (batched.hits, batched.misses, batched.insertions) == \
            (fine.hits, fine.misses, fine.insertions)

    def test_fetch_many_empty(self, runtime):
        store = TargetStore(runtime)
        assert store.fetch_many(runtime.contexts[0], []) == []

    def test_mark_not_single_copy(self, runtime):
        store = TargetStore(runtime)
        ctx = runtime.contexts[0]
        record = store.store_fragment(ctx, 5, 0, 0, "ACGTACGT")
        assert record.single_copy_seeds
        pointer = store.directory[5].pointer
        store.mark_not_single_copy(runtime.contexts[2], pointer)
        assert not record.single_copy_seeds
        # Marking twice is idempotent and does not charge a second put.
        puts_before = runtime.contexts[2].stats.puts
        store.mark_not_single_copy(runtime.contexts[2], pointer)
        assert runtime.contexts[2].stats.puts == puts_before

    def test_single_copy_fraction(self, runtime):
        store = TargetStore(runtime)
        ctx = runtime.contexts[0]
        store.store_fragment(ctx, 1, 0, 0, "ACGTACGT")
        store.store_fragment(ctx, 2, 1, 0, "GGGGCCCC")
        assert store.single_copy_fraction() == 1.0
        store.mark_not_single_copy(ctx, store.directory[2].pointer)
        assert store.single_copy_fraction() == 0.5

    def test_fragment_id_allocation_unique_across_ranks(self, runtime):
        store = TargetStore(runtime)
        ids_rank0 = store.allocate_fragment_ids(100, rank=0, n_ranks=4)
        ids_rank3 = store.allocate_fragment_ids(100, rank=3, n_ranks=4)
        assert not set(ids_rank0) & set(ids_rank3)

    def test_fragments_on_rank_and_all(self, runtime):
        store = TargetStore(runtime)
        store.store_fragment(runtime.contexts[0], 1, 0, 0, "ACGT")
        store.store_fragment(runtime.contexts[2], 2, 0, 0, "GGTT")
        assert len(store.fragments_on_rank(0)) == 1
        assert len(store.fragments_on_rank(1)) == 0
        assert store.n_fragments == 2
        assert len(store.all_fragments()) == 2

    def test_empty_store_fraction(self, runtime):
        assert TargetStore(runtime).single_copy_fraction() == 0.0
