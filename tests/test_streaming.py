"""Streaming ingestion subsystem: bounded channels, chunked sources, and
byte-identity of the streamed paths against the materialised ones.

The house invariant under test: at ANY chunk size, the concatenated parts of
a streamed run are byte-for-byte the materialised render of the same reads --
offline (``AlignmentSession.run_plan_stream``) and over the socket (the
``ALIGNSTREAM`` verb family) -- across every backend with bulk lookups on and
off.  Alongside it: the bounded-memory properties (channel occupancy never
exceeds capacity, the source is pulled at most one chunk ahead, RSS stays
flat), the malformed/truncated-FASTQ error contract, and the load generator's
in-flight cap.
"""

import gzip
import threading

import pytest

from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import (GenomeSpec, ReadRecord, ReadSetSpec,
                                 make_dataset)
from repro.io.errors import InputFileError
from repro.io.fastq import (FastqRecord, iter_fastq, read_fastq,
                            read_fastq_paired, write_fastq)
from repro.io.seqdb import records_to_seqdb
from repro.obs.loadgen import LoadGenerator
from repro.obs.rss import current_rss_kib
from repro.pgas.cost_model import EDISON_LIKE
from repro.service.client import ServiceError, SocketAlignmentClient
from repro.service.scheduler import RequestScheduler
from repro.service.server import AlignmentServer
from repro.stream import (BoundedChannel, ChannelClosed, ChannelFull,
                          ReadChunk, open_read_stream, stream_fastq,
                          stream_fastq_paired, stream_records, stream_seqdb)

BACKENDS = ("cooperative", "threaded", "process")
MACHINE = EDISON_LIKE.with_cores_per_node(2)
#: The satellite matrix: a degenerate chunk, a chunk that straddles windows
#: unevenly, and a chunk larger than the whole read set.
CHUNK_SIZES = (1, 7, 4096)
WORKLOADS = ("align", "paired", "count", "screen")
STREAM_CHANNEL_CAPACITY = 4


def _config(bulk: bool) -> AlignerConfig:
    return AlignerConfig(seed_length=21, fragment_length=600,
                         seed_cache_bytes_per_node=256 * 1024,
                         target_cache_bytes_per_node=256 * 1024,
                         use_bulk_lookups=bulk, lookup_batch_size=16)


@pytest.fixture(scope="module")
def stream_dataset():
    spec = GenomeSpec(name="stream", genome_length=5000, n_contigs=3,
                      repeat_fraction=0.02, min_contig_length=200)
    read_spec = ReadSetSpec(coverage=1.2, read_length=60, error_rate=0.01,
                            reverse_strand_fraction=0.5)
    genome, reads = make_dataset(spec, read_spec, seed=13)
    names = [f"contig{i}" for i in range(len(genome.contigs))]
    return genome, reads, names


def _combo_id(param):
    backend, bulk = param
    return f"{backend}-bulk{'on' if bulk else 'off'}"


@pytest.fixture(scope="module",
                params=[(b, bulk) for b in BACKENDS for bulk in (False, True)],
                ids=_combo_id)
def stack(request, stream_dataset):
    """One (backend, bulk) cell of the matrix: a resident session plus a
    running socket server on top of it, shared by the offline and the wire
    byte-identity tests."""
    backend, bulk = request.param
    genome, _reads, names = stream_dataset
    session = MerAligner(_config(bulk)).prepare(
        genome.contigs, n_ranks=4, machine=MACHINE, backend=backend,
        target_names=names)
    scheduler = RequestScheduler(session, max_wait_s=0.005)
    server = AlignmentServer(scheduler, port=0,
                             stream_channel_capacity=STREAM_CHANNEL_CAPACITY,
                             stream_max_inflight=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield backend, bulk, session, server
    finally:
        server.shutdown()
        thread.join(timeout=30.0)
        scheduler.close()
        session.close()


def _reference(session, workload, reads):
    """Materialised output + counters: the bytes a streamed run must match."""
    outcome = session.run_plan_many(workload, [list(reads)])
    output = outcome.per_request_outputs[0]
    counters = outcome.per_request_counters[0]
    return session.render(workload, output), counters


def _deterministic(counters):
    return (counters.reads_processed, counters.reads_aligned,
            counters.alignments_reported, counters.exact_path_hits)


# ---------------------------------------------------------------------------
# The bounded channel
# ---------------------------------------------------------------------------


class TestBoundedChannel:
    def test_fifo_order_and_watermark(self):
        channel = BoundedChannel(capacity=3)
        for item in ("a", "b", "c"):
            channel.put(item)
        assert channel.depth == 3
        assert channel.high_watermark == 3
        assert [channel.get(), channel.get(), channel.get()] == ["a", "b", "c"]
        assert channel.depth == 0
        assert channel.high_watermark == 3  # watermark is sticky
        assert channel.total_put == 3

    def test_capacity_and_policy_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedChannel(capacity=0)
        with pytest.raises(ValueError, match="overflow"):
            BoundedChannel(capacity=1, overflow="drop")

    def test_blocking_put_waits_for_space(self):
        channel = BoundedChannel(capacity=1)
        channel.put("first")
        unblocked = threading.Event()

        def producer():
            channel.put("second")  # blocks until the consumer drains
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(0.05), "put went through on a full channel"
        assert channel.get() == "first"
        assert unblocked.wait(5.0), "put never unblocked after a get"
        assert channel.get() == "second"
        thread.join(timeout=5.0)

    def test_put_timeout_on_full_channel(self):
        channel = BoundedChannel(capacity=1)
        channel.put("x")
        with pytest.raises(TimeoutError, match="put timed out"):
            channel.put("y", timeout=0.01)

    def test_get_timeout_on_empty_channel(self):
        channel = BoundedChannel(capacity=1)
        with pytest.raises(TimeoutError, match="get timed out"):
            channel.get(timeout=0.01)

    def test_reject_policy_raises_channel_full(self):
        channel = BoundedChannel(capacity=2, overflow="reject")
        channel.put(1)
        channel.put(2)
        with pytest.raises(ChannelFull):
            channel.put(3)
        assert channel.get() == 1
        channel.put(3)  # space freed, accepted again

    def test_close_drains_then_raises(self):
        channel = BoundedChannel(capacity=4)
        channel.put("queued")
        channel.close()
        assert channel.closed
        assert channel.get() == "queued"  # queued items survive close
        with pytest.raises(ChannelClosed):
            channel.get()

    def test_put_after_close_raises(self):
        channel = BoundedChannel(capacity=4)
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.put("late")
        rejecting = BoundedChannel(capacity=4, overflow="reject")
        rejecting.close()
        with pytest.raises(ChannelClosed):
            rejecting.put("late")

    def test_close_unblocks_a_waiting_producer(self):
        channel = BoundedChannel(capacity=1)
        channel.put("full")
        outcome: list = []

        def producer():
            try:
                channel.put("blocked")
            except ChannelClosed as exc:
                outcome.append(exc)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        channel.close()
        thread.join(timeout=5.0)
        assert len(outcome) == 1, "close did not unblock the waiting put"

    def test_iterator_ends_on_close(self):
        channel = BoundedChannel(capacity=8)
        for i in range(5):
            channel.put(i)
        channel.close()
        assert list(channel) == [0, 1, 2, 3, 4]

    def test_fail_forwards_error_after_draining(self):
        channel = BoundedChannel(capacity=8)
        channel.put("before-failure")
        channel.fail(InputFileError("bad record", record_index=7))
        assert channel.get() == "before-failure"
        with pytest.raises(InputFileError, match="record 7"):
            channel.get()
        # ... and via iteration (the server's consumer loop shape).
        failing = BoundedChannel(capacity=2)
        failing.fail(ValueError("producer exploded"))
        with pytest.raises(ValueError, match="producer exploded"):
            list(failing)


# ---------------------------------------------------------------------------
# Chunked sources
# ---------------------------------------------------------------------------


def _fastq_records(n, length=12, prefix="r"):
    return [FastqRecord(name=f"{prefix}{i}", sequence="ACGT" * (length // 4),
                        quality="I" * length) for i in range(n)]


class TestReadSources:
    def test_chunk_indexing_and_sizes(self):
        chunks = list(stream_records(_fastq_records(10), chunk_reads=4))
        assert [c.n_reads for c in chunks] == [4, 4, 2]
        assert [c.index for c in chunks] == [0, 1, 2]
        assert [c.start_read for c in chunks] == [0, 4, 8]
        names = [r.name for c in chunks for r in c.records]
        assert names == [f"r{i}" for i in range(10)]

    def test_paired_chunks_never_split_pairs(self):
        # chunk_reads that is not a multiple of the unit rounds DOWN to
        # whole pairs; a degenerate chunk_reads=1 still holds one whole pair.
        for chunk_reads, expected_span in ((1, 2), (3, 2), (7, 6)):
            chunks = list(stream_records(_fastq_records(12),
                                         chunk_reads=chunk_reads,
                                         group_size=2))
            assert all(c.n_reads % 2 == 0 for c in chunks), chunk_reads
            assert max(c.n_reads for c in chunks) == expected_span

    def test_mid_unit_stream_raises(self):
        with pytest.raises(InputFileError, match="mid-unit"):
            list(stream_records(_fastq_records(5), chunk_reads=64,
                                group_size=2))

    def test_stream_fastq_matches_read_fastq(self, tmp_path):
        path = tmp_path / "reads.fastq"
        write_fastq(path, _fastq_records(9))
        materialised = [r.to_read() for r in read_fastq(path)]
        streamed = [r for c in stream_fastq(path, chunk_reads=4)
                    for r in c.records]
        assert streamed == materialised

    def test_stream_fastq_gzip_transparent(self, tmp_path):
        plain = tmp_path / "reads.fastq"
        write_fastq(plain, _fastq_records(6))
        gzipped = tmp_path / "reads.fastq.gz"
        with gzip.open(gzipped, "wb") as handle:
            handle.write(plain.read_bytes())
        assert ([c.records for c in stream_fastq(gzipped, chunk_reads=4)] ==
                [c.records for c in stream_fastq(plain, chunk_reads=4)])

    def test_stream_seqdb_round_trip(self, tmp_path):
        records = _fastq_records(7)
        path = tmp_path / "reads.seqdb"
        records_to_seqdb(path, records)
        streamed = [r.name for c in stream_seqdb(path, chunk_reads=3)
                    for r in c.records]
        assert streamed == [r.name for r in records]

    def test_two_file_paired_interleaves(self, tmp_path):
        r1, r2 = tmp_path / "r1.fastq", tmp_path / "r2.fastq"
        write_fastq(r1, _fastq_records(4, prefix="a"))
        write_fastq(r2, _fastq_records(4, prefix="b"))
        names = [r.name for c in stream_fastq_paired(r1, r2, chunk_reads=4)
                 for r in c.records]
        assert names == ["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"]

    def test_two_file_paired_mismatch_raises(self, tmp_path):
        r1, r2 = tmp_path / "r1.fastq", tmp_path / "r2.fastq"
        write_fastq(r1, _fastq_records(3, prefix="a"))
        write_fastq(r2, _fastq_records(2, prefix="b"))
        with pytest.raises(InputFileError):
            list(stream_fastq_paired(r1, r2, chunk_reads=64))

    def test_open_read_stream_dispatch(self, tmp_path):
        fastq = tmp_path / "reads.fastq"
        write_fastq(fastq, _fastq_records(5))
        seqdb = tmp_path / "reads.seqdb"
        records_to_seqdb(seqdb, _fastq_records(5))
        from_fastq = [r.name for c in open_read_stream(fastq, chunk_reads=2)
                      for r in c.records]
        from_seqdb = [r.name for c in open_read_stream(seqdb, chunk_reads=2)
                      for r in c.records]
        from_memory = [r.name
                       for c in open_read_stream(_fastq_records(5),
                                                 chunk_reads=2)
                       for r in c.records]
        assert from_fastq == from_seqdb == from_memory
        with pytest.raises(ValueError, match="FASTQ-only"):
            open_read_stream(seqdb, paired=True, reads2=fastq)


# ---------------------------------------------------------------------------
# Malformed / truncated FASTQ (satellite: InputFileError with position)
# ---------------------------------------------------------------------------

VALID_TWO_RECORD_FASTQ = ("@r0\nACGTACGT\n+\nIIIIIIII\n"
                          "@r1\nTTTTCCCC\n+\nJJJJJJJJ\n")


def _readers(path):
    """Every reader the error contract covers: materialised, incremental,
    and chunked-streaming."""
    return (lambda: read_fastq(path),
            lambda: list(iter_fastq(path)),
            lambda: list(stream_fastq(path, chunk_reads=1)))


class TestMalformedFastq:
    @pytest.mark.parametrize("keep_lines,record_index",
                             [(1, 0), (2, 0), (3, 0),   # record 0 truncated
                              (5, 1), (6, 1), (7, 1)])  # record 1 truncated
    def test_truncated_at_every_field(self, tmp_path, keep_lines,
                                      record_index):
        path = tmp_path / "trunc.fastq"
        lines = VALID_TWO_RECORD_FASTQ.splitlines()[:keep_lines]
        path.write_text("\n".join(lines) + "\n")
        for reader in _readers(path):
            with pytest.raises(InputFileError) as err:
                reader()
            assert err.value.record_index == record_index
            assert err.value.line_number == keep_lines
            assert "truncated" in str(err.value)

    def test_truncation_on_a_record_boundary_is_clean_eof(self, tmp_path):
        path = tmp_path / "one.fastq"
        lines = VALID_TWO_RECORD_FASTQ.splitlines()[:4]
        path.write_text("\n".join(lines) + "\n")
        assert len(read_fastq(path)) == 1

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text(VALID_TWO_RECORD_FASTQ.replace("@r1", "r1"))
        for reader in _readers(path):
            with pytest.raises(InputFileError, match="header") as err:
                reader()
            assert err.value.record_index == 1
            assert err.value.line_number == 5

    def test_malformed_separator(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@r0\nACGTACGT\nSEP\nIIIIIIII\n")
        for reader in _readers(path):
            with pytest.raises(InputFileError, match="separator") as err:
                reader()
            assert err.value.record_index == 0
            assert err.value.line_number == 3

    def test_quality_length_mismatch(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@r0\nACGTACGT\n+\nIII\n")
        for reader in _readers(path):
            with pytest.raises(InputFileError, match="quality length") as err:
                reader()
            assert err.value.record_index == 0
            assert err.value.line_number == 4

    def test_empty_read_name(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@\nACGTACGT\n+\nIIIIIIII\n")
        with pytest.raises(InputFileError, match="name"):
            read_fastq(path)

    def test_blank_header_mid_file(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@r0\nACGT\n+\nIIII\n\n@r1\nACGT\n+\nIIII\n")
        with pytest.raises(InputFileError, match="blank") as err:
            read_fastq(path)
        assert err.value.line_number == 5

    def test_trailing_blank_lines_are_clean_eof(self, tmp_path):
        path = tmp_path / "ok.fastq"
        path.write_text(VALID_TWO_RECORD_FASTQ + "\n\n")
        assert len(read_fastq(path)) == 2

    def test_paired_odd_interleaved_count(self, tmp_path):
        path = tmp_path / "odd.fastq"
        write_fastq(path, _fastq_records(3))
        with pytest.raises(InputFileError, match="even number"):
            read_fastq_paired(path)

    def test_cli_maps_input_errors_to_exit_2(self, tmp_path):
        from repro.cli import main
        targets = tmp_path / "targets.fa"
        targets.write_text(">t0\n" + "ACGT" * 200 + "\n")
        bad = tmp_path / "trunc.fastq"
        bad.write_text("@r0\nACGTACGT\n+\n")  # EOF before the quality line
        for extra in ([], ["--stream", "--chunk-reads", "2"]):
            code = main(["align", "--targets", str(targets),
                         "--reads", str(bad),
                         "--output", str(tmp_path / "out.sam"),
                         "--ranks", "2"] + extra)
            assert code == 2, extra


# ---------------------------------------------------------------------------
# Offline byte-identity matrix (workload x backend x bulk x chunk size)
# ---------------------------------------------------------------------------


class TestOfflineByteIdentity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_streamed_equals_materialised(self, stack, stream_dataset,
                                          workload):
        backend, bulk, session, _server = stack
        _genome, reads, _names = stream_dataset
        payload = reads[:24]  # even count: doubles as 12 interleaved pairs
        group = 2 if workload == "paired" else 1
        reference, ref_counters = _reference(session, workload, payload)
        for chunk_reads in CHUNK_SIZES:
            parts = list(session.run_plan_stream(
                workload,
                stream_records(payload, chunk_reads=chunk_reads,
                               group_size=group)))
            observed = "".join(part.text for part in parts)
            assert observed == reference, (backend, bulk, chunk_reads)
            final = parts[-1]
            assert final.final
            span = max(group, (chunk_reads // group) * group)
            expected_chunks = -(-len(payload) // span)  # ceil division
            assert final.n_chunks == expected_chunks == len(parts) - 1
            assert final.n_units == len(payload) // group
            assert _deterministic(final.counters) == \
                _deterministic(ref_counters), (backend, bulk, chunk_reads)

    def test_record_iterable_is_adapted_transparently(self, stack,
                                                      stream_dataset):
        """run_plan_stream accepts a bare record iterable (not ReadChunks)
        and chunks it itself at chunk_reads."""
        _backend, _bulk, session, _server = stack
        _genome, reads, _names = stream_dataset
        payload = reads[:10]
        reference, _ = _reference(session, "align", payload)
        parts = list(session.align_stream(iter(payload), chunk_reads=4))
        assert "".join(p.text for p in parts) == reference
        assert parts[-1].n_chunks == 3

    def test_empty_stream_renders_header_only(self, stack):
        _backend, _bulk, session, _server = stack
        parts = list(session.align_stream(iter(())))
        assert len(parts) == 1 and parts[0].final
        assert parts[0].text == session.sam_for([])
        assert parts[0].n_chunks == 0


# ---------------------------------------------------------------------------
# Wire byte-identity matrix (ALIGNSTREAM family over the socket)
# ---------------------------------------------------------------------------


class TestServedByteIdentity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_wire_stream_equals_one_shot(self, stack, stream_dataset,
                                         workload):
        backend, bulk, _session, server = stack
        _genome, reads, _names = stream_dataset
        payload = reads[:24]
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        one_shot = client.workload_text(workload, payload)
        for chunk_reads in CHUNK_SIZES:
            streamed = "".join(client.stream_parts(workload, payload,
                                                   chunk_reads=chunk_reads))
            assert streamed == one_shot, (backend, bulk, chunk_reads)
        # Bounded occupancy: the producer never outran the consumer past
        # the channel capacity (the acceptance assertion of the issue).
        watermark = server.metrics.snapshot()["gauges"][
            "stream_channel_high_watermark"]
        assert 0 < watermark <= STREAM_CHANNEL_CAPACITY

    def test_stream_chunk_metrics_recorded(self, stack):
        _backend, _bulk, _session, server = stack
        counters = server.metrics.snapshot()["counters"]
        streamed = {series: value for series, value in counters.items()
                    if series.startswith("stream_chunks_total")}
        assert streamed and sum(streamed.values()) > 1

    def test_empty_wire_stream_is_header_only(self, stack):
        _backend, _bulk, session, server = stack
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        streamed = "".join(client.stream_parts("align", iter(())))
        assert streamed == session.sam_for([])

    def test_odd_paired_chunk_is_an_error(self, stack, stream_dataset):
        _backend, _bulk, _session, server = stack
        _genome, reads, _names = stream_dataset
        client = SocketAlignmentClient(port=server.port, timeout=120.0)
        # A hand-built odd chunk bypasses the source's unit-awareness; the
        # local source raises before the server ever gets a bad frame.
        odd = [ReadChunk(index=0, start_read=0,
                         records=tuple(r for r in reads[:3]))]
        with pytest.raises((InputFileError, ServiceError)):
            list(client.stream_parts("paired", iter(odd)))
        # The connectionful failure must not poison subsequent requests.
        assert client.ping()


# ---------------------------------------------------------------------------
# Bounded memory: laziness, flat RSS, and the loadgen in-flight cap
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def solo_session(stream_dataset):
    genome, _reads, names = stream_dataset
    session = MerAligner(_config(True)).prepare(
        genome.contigs, n_ranks=2, machine=MACHINE, backend="cooperative",
        target_names=names)
    yield session
    session.close()


@pytest.fixture(scope="module")
def solo_server(solo_session):
    scheduler = RequestScheduler(solo_session, max_wait_s=0.005)
    server = AlignmentServer(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30.0)
        scheduler.close()


class TestBoundedMemory:
    def test_source_is_pulled_at_most_one_chunk_ahead(self, solo_session,
                                                      stream_dataset):
        _genome, reads, _names = stream_dataset
        pulled = [0]

        def source():
            for read in reads:
                pulled[0] += 1
                yield read

        chunk_reads = 8
        for k, part in enumerate(solo_session.align_stream(
                source(), chunk_reads=chunk_reads)):
            if part.final:
                break
            # After yielding part k the session holds chunk k+1 at most
            # (the one-chunk lookahead that detects end-of-stream).
            assert pulled[0] <= (k + 2) * chunk_reads
        assert pulled[0] == len(reads)

    def test_rss_stays_flat_across_a_long_stream(self, solo_session,
                                                 stream_dataset):
        """Satellite acceptance: resident set size does not grow with the
        stream.  The reads are synthesised by a generator, so the only way
        memory could grow is the streaming path retaining per-chunk state."""
        _genome, reads, _names = stream_dataset
        n_total, chunk_reads = 1500, 250

        def source():
            for i in range(n_total):
                base = reads[i % len(reads)]
                yield ReadRecord(name=f"s{i}", sequence=base.sequence,
                                 quality=base.quality)

        samples = []
        n_reads = 0
        for part in solo_session.align_stream(source(),
                                              chunk_reads=chunk_reads):
            samples.append(current_rss_kib())
            if not part.final:
                n_reads += part.n_reads
        assert n_reads == n_total
        if samples[0] == 0:
            pytest.skip("RSS sampling unavailable on this platform")
        # Growth across the stream stays far below one chunk-of-everything;
        # 64 MiB absorbs allocator noise while catching real retention.
        assert max(samples) - min(samples) < 64 * 1024

    def test_loadgen_enforces_and_reports_inflight_cap(self, solo_server,
                                                       stream_dataset):
        _genome, reads, _names = stream_dataset
        generator = LoadGenerator(
            "127.0.0.1", solo_server.port, reads[:32], qps=500.0,
            concurrency=4, max_inflight=2, n_requests=10,
            reads_per_request=4, workloads=("align", "count"), seed=3,
            timeout=120.0)
        report = generator.run()
        assert report.n_errors == 0
        assert report.max_inflight == 2
        assert 1 <= report.peak_inflight <= 2
        document = report.to_json_dict()
        assert document["max_inflight"] == 2
        assert document["peak_inflight"] == report.peak_inflight

    def test_loadgen_records_peak_without_a_cap(self, solo_server,
                                                stream_dataset):
        _genome, reads, _names = stream_dataset
        generator = LoadGenerator(
            "127.0.0.1", solo_server.port, reads[:32], qps=500.0,
            concurrency=3, n_requests=6, reads_per_request=4,
            workloads=("align",), seed=4, timeout=120.0)
        report = generator.run()
        assert report.n_errors == 0
        assert report.max_inflight is None
        assert 1 <= report.peak_inflight <= 3
        assert report.to_json_dict()["max_inflight"] is None


# ---------------------------------------------------------------------------
# CLI streaming
# ---------------------------------------------------------------------------


class TestCliStreaming:
    def test_align_stream_byte_identical(self, tmp_path, capsys):
        from repro.cli import main
        data = tmp_path / "data"
        assert main(["simulate", "--output-dir", str(data),
                     "--genome-length", "4000", "--n-contigs", "4",
                     "--coverage", "1", "--read-length", "60",
                     "--seed", "5"]) == 0
        base = ["align", "--targets", str(data / "contigs.fa"),
                "--reads", str(data / "reads.fastq"), "--ranks", "2"]
        materialised = tmp_path / "materialised.sam"
        streamed = tmp_path / "streamed.sam"
        assert main(base + ["--output", str(materialised)]) == 0
        assert main(base + ["--output", str(streamed),
                            "--stream", "--chunk-reads", "17"]) == 0
        out = capsys.readouterr().out
        assert "chunk" in out
        assert streamed.read_bytes() == materialised.read_bytes()
