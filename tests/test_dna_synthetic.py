"""Tests for the synthetic genome / contig / read generators."""

import numpy as np
import pytest

from repro.dna.kmer import count_kmers
from repro.dna.sequence import is_valid_dna, reverse_complement
from repro.dna.synthetic import (
    ECOLI_LIKE,
    HUMAN_LIKE,
    WHEAT_LIKE,
    GenomeSpec,
    ReadRecord,
    ReadSetSpec,
    derive_contigs,
    genome_with_repeats,
    make_dataset,
    random_genome,
    sample_reads,
)


class TestSpecs:
    def test_presets_are_valid(self):
        for spec in (ECOLI_LIKE, HUMAN_LIKE, WHEAT_LIKE):
            assert spec.genome_length > 0
            assert spec.n_contigs >= 1

    def test_scaled(self):
        scaled = HUMAN_LIKE.scaled(0.1)
        assert scaled.genome_length == int(HUMAN_LIKE.genome_length * 0.1)
        assert scaled.name == HUMAN_LIKE.name

    def test_invalid_genome_spec(self):
        with pytest.raises(ValueError):
            GenomeSpec(name="bad", genome_length=0)
        with pytest.raises(ValueError):
            GenomeSpec(name="bad", genome_length=100, repeat_fraction=1.0)

    def test_invalid_read_spec(self):
        with pytest.raises(ValueError):
            ReadSetSpec(coverage=0)
        with pytest.raises(ValueError):
            ReadSetSpec(read_length=0)

    def test_n_reads_for_coverage(self):
        spec = ReadSetSpec(coverage=10.0, read_length=100)
        assert spec.n_reads_for(10_000) == 1000


class TestGenomeGeneration:
    def test_random_genome_length_and_alphabet(self, rng):
        genome = random_genome(5000, rng)
        assert len(genome) == 5000
        assert is_valid_dna(genome)

    def test_repeats_increase_duplicate_kmers(self):
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        plain = genome_with_repeats(20000, rng1, repeat_fraction=0.0)
        repetitive = genome_with_repeats(20000, rng2, repeat_fraction=0.3,
                                         repeat_unit_length=400)
        k = 21
        plain_dupes = sum(1 for c in count_kmers([plain], k).values() if c > 1)
        rep_dupes = sum(1 for c in count_kmers([repetitive], k).values() if c > 1)
        assert rep_dupes > plain_dupes

    def test_invalid_repeat_fraction(self, rng):
        with pytest.raises(ValueError):
            genome_with_repeats(100, rng, repeat_fraction=1.0)


class TestDeriveContigs:
    def test_single_contig(self, rng):
        contigs, offsets = derive_contigs("ACGT" * 100, 1, rng)
        assert contigs == ["ACGT" * 100]
        assert offsets == [0]

    def test_contigs_are_substrings_at_offsets(self, rng):
        genome = random_genome(20000, rng)
        contigs, offsets = derive_contigs(genome, 8, rng, min_contig_length=300)
        assert len(contigs) == len(offsets)
        assert len(contigs) >= 2
        for contig, offset in zip(contigs, offsets):
            assert genome[offset:offset + len(contig)] == contig

    def test_offsets_strictly_increasing(self, rng):
        genome = random_genome(30000, rng)
        _, offsets = derive_contigs(genome, 10, rng)
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)

    def test_empty_genome(self, rng):
        assert derive_contigs("", 4, rng) == ([], [])

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            derive_contigs("ACGT", 0, rng)


class TestSampleReads:
    def test_read_properties(self, small_dataset):
        genome, reads = small_dataset
        spec_length = 70
        assert len(reads) > 0
        for read in reads[:50]:
            assert len(read.sequence) == spec_length
            assert len(read.quality) == spec_length
            assert read.strand in "+-"

    def test_ground_truth_positions(self, perfect_dataset):
        genome, reads = perfect_dataset
        located = [r for r in reads if r.contig_id >= 0]
        assert located, "some reads must land inside contigs"
        for read in located[:100]:
            contig = genome.contigs[read.contig_id]
            fragment = contig[read.position:read.position + len(read.sequence)]
            expected = fragment if read.strand == "+" else reverse_complement(fragment)
            assert read.sequence == expected

    def test_grouped_ordering_sorted_by_position(self, rng):
        spec = GenomeSpec(name="g", genome_length=5000, n_contigs=1)
        genome, _ = make_dataset(spec, ReadSetSpec(coverage=2, read_length=50), seed=3)
        grouped = sample_reads(genome, ReadSetSpec(coverage=2, read_length=50,
                                                   grouped=True,
                                                   reverse_strand_fraction=0.0,
                                                   error_rate=0.0), rng)
        positions = [r.position for r in grouped if r.contig_id == 0]
        assert positions == sorted(positions)

    def test_paired_reads_reference_each_other(self, rng):
        spec = GenomeSpec(name="p", genome_length=4000, n_contigs=1)
        genome, _ = make_dataset(spec, ReadSetSpec(coverage=1, read_length=50), seed=4)
        reads = sample_reads(genome, ReadSetSpec(coverage=1, read_length=50,
                                                 paired=True), rng)
        mates = {r.name: r for r in reads if r.mate_of}
        assert mates
        for read in mates.values():
            assert read.mate_of in mates

    def test_read_longer_than_genome_raises(self, rng):
        spec = GenomeSpec(name="t", genome_length=30, n_contigs=1, min_contig_length=10)
        genome, _ = make_dataset(spec, ReadSetSpec(coverage=1, read_length=20), seed=5)
        with pytest.raises(ValueError):
            sample_reads(genome, ReadSetSpec(coverage=1, read_length=100), rng)


class TestReadRecord:
    def test_mismatched_quality_raises(self):
        with pytest.raises(ValueError):
            ReadRecord(name="r", sequence="ACGT", quality="II")

    def test_invalid_strand_raises(self):
        with pytest.raises(ValueError):
            ReadRecord(name="r", sequence="ACGT", quality="IIII", strand="x")

    def test_is_exact(self):
        read = ReadRecord(name="r", sequence="ACGT", quality="IIII", n_errors=0)
        assert read.is_exact
        read2 = ReadRecord(name="r", sequence="ACGT", quality="IIII", n_errors=2)
        assert not read2.is_exact


class TestMakeDataset:
    def test_deterministic(self):
        spec = GenomeSpec(name="d", genome_length=3000, n_contigs=2)
        rs = ReadSetSpec(coverage=1, read_length=40)
        g1, r1 = make_dataset(spec, rs, seed=9)
        g2, r2 = make_dataset(spec, rs, seed=9)
        assert g1.genome == g2.genome
        assert [x.sequence for x in r1] == [x.sequence for x in r2]

    def test_unique_seed_fraction_range(self, small_dataset):
        genome, _ = small_dataset
        frac = genome.unique_seed_fraction(21)
        assert 0.0 < frac <= 1.0
