"""Tests for the ground-truth evaluation module."""

import pytest

from repro.alignment.result import Alignment
from repro.core.evaluation import compare_aligners, evaluate_alignments
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import ReadRecord


def make_read(name, contig_id=0, position=10, strand="+"):
    return ReadRecord(name=name, sequence="ACGT" * 5, quality="I" * 20,
                      contig_id=contig_id, position=position, strand=strand)


def make_alignment(name, target_id=0, start=10, strand="+"):
    return Alignment(query_name=name, target_id=target_id, score=40,
                     query_start=0, query_end=20,
                     target_start=start, target_end=start + 20, strand=strand)


class TestEvaluateAlignments:
    def test_perfect_case(self):
        reads = [make_read("r1"), make_read("r2", position=50)]
        alignments = [make_alignment("r1"), make_alignment("r2", start=50)]
        result = evaluate_alignments(reads, alignments)
        assert result.aligned_fraction == 1.0
        assert result.recall == 1.0
        assert result.precision == 1.0
        assert result.strand_accuracy == 1.0

    def test_tolerance_window(self):
        reads = [make_read("r1", position=10)]
        result = evaluate_alignments(reads, [make_alignment("r1", start=12)],
                                     tolerance=3)
        assert result.recall == 1.0
        strict = evaluate_alignments(reads, [make_alignment("r1", start=12)],
                                     tolerance=1)
        assert strict.recall == 0.0

    def test_wrong_contig_counts_as_miss(self):
        reads = [make_read("r1", contig_id=0)]
        result = evaluate_alignments(reads, [make_alignment("r1", target_id=5)])
        assert result.aligned_fraction == 1.0
        assert result.recall == 0.0
        assert result.precision == 0.0

    def test_wrong_strand_tracked_separately(self):
        reads = [make_read("r1", strand="+")]
        result = evaluate_alignments(reads, [make_alignment("r1", strand="-")])
        assert result.recall == 1.0
        assert result.strand_accuracy == 0.0

    def test_gap_reads_excluded_from_recall(self):
        reads = [make_read("r1", contig_id=-1, position=-1), make_read("r2")]
        result = evaluate_alignments(reads, [make_alignment("r2")])
        assert result.n_locatable == 1
        assert result.recall == 1.0
        assert result.aligned_fraction == 0.5

    def test_no_alignments(self):
        reads = [make_read("r1")]
        result = evaluate_alignments(reads, [])
        assert result.aligned_fraction == 0.0
        assert result.recall == 0.0
        assert result.precision == 0.0

    def test_unknown_read_raises(self):
        with pytest.raises(KeyError):
            evaluate_alignments([make_read("r1")], [make_alignment("ghost")])

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            evaluate_alignments([], [], tolerance=-1)

    def test_as_dict_keys(self):
        result = evaluate_alignments([make_read("r1")], [make_alignment("r1")])
        for key in ("aligned_fraction", "recall", "precision", "strand_accuracy"):
            assert key in result.as_dict()

    def test_empty_inputs(self):
        result = evaluate_alignments([], [])
        assert result.n_reads == 0
        assert result.aligned_fraction == 0.0


class TestCompareAligners:
    def test_ordering_and_keys(self):
        reads = [make_read("r1")]
        results = compare_aligners(reads, {
            "a": [make_alignment("r1")],
            "b": [],
        })
        assert list(results) == ["a", "b"]
        assert results["a"].recall == 1.0
        assert results["b"].recall == 0.0

    def test_pipeline_output_evaluates_cleanly(self, perfect_dataset, small_config):
        genome, reads = perfect_dataset
        report = MerAligner(small_config).run(genome.contigs, reads, n_ranks=2)
        result = evaluate_alignments(reads, report.alignments)
        assert result.recall > 0.95
        assert result.aligned_fraction > 0.9
        assert result.strand_accuracy > 0.9
