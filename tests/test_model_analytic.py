"""Tests for the analytic models (cache reuse, load imbalance, scaling)."""

import pytest

from repro.model.cache_reuse import (
    expected_seed_frequency,
    reuse_probability_curve,
    seed_reuse_probability,
    simulate_seed_reuse,
)
from repro.model.load_imbalance import (
    imbalance_bound,
    max_load_bound,
    simulate_balls_into_bins,
)
from repro.model.scaling import (
    ScalingSeries,
    ideal_times,
    parallel_efficiency,
    speedup,
)


class TestCacheReuse:
    def test_expected_frequency_paper_values(self):
        # d=100, L=100, k=51 -> f = 100 * (1 - 50/100) = 50 (section III-B)
        assert expected_seed_frequency(100, 100, 51) == pytest.approx(50.0)

    def test_frequency_validation(self):
        with pytest.raises(ValueError):
            expected_seed_frequency(0, 100, 51)
        with pytest.raises(ValueError):
            expected_seed_frequency(10, 100, 101)

    def test_probability_decreases_with_cores(self):
        probabilities = [seed_reuse_probability(50, p, 24)
                         for p in (240, 2400, 14400)]
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_probability_bounds(self):
        assert seed_reuse_probability(50, 24, 24) == 1.0  # single node
        assert seed_reuse_probability(1, 4800, 24) == 0.0  # no other occurrence
        assert 0.0 <= seed_reuse_probability(50, 14400, 24) <= 1.0

    def test_figure7_shape(self):
        """Fig 7: near-certain reuse at small scale, substantially lower at 14K cores."""
        curve = dict(reuse_probability_curve([480, 2400, 7200, 14400]))
        assert curve[480] > 0.9
        assert curve[14400] < 0.5
        assert curve[480] > curve[2400] > curve[7200] > curve[14400]

    def test_monte_carlo_agrees_with_closed_form(self):
        for nodes in (5, 20, 100):
            analytic = seed_reuse_probability(50, nodes * 24, 24)
            simulated = simulate_seed_reuse(50, nodes, n_trials=3000, seed=1)
            assert simulated == pytest.approx(analytic, abs=0.05)

    def test_simulation_validation(self):
        with pytest.raises(ValueError):
            simulate_seed_reuse(0, 10)
        assert simulate_seed_reuse(5, 1) == 1.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            seed_reuse_probability(50, 0, 24)


class TestLoadImbalance:
    def test_bound_zero_cases(self):
        assert imbalance_bound(0, 10) == 0.0
        assert imbalance_bound(100, 1) == 0.0

    def test_bound_grows_with_h(self):
        assert imbalance_bound(10_000, 16) > imbalance_bound(1_000, 16)

    def test_max_load_bound(self):
        assert max_load_bound(1000, 10) == pytest.approx(100 + imbalance_bound(1000, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            imbalance_bound(-1, 10)
        with pytest.raises(ValueError):
            imbalance_bound(10, 0)
        with pytest.raises(ValueError):
            simulate_balls_into_bins(-1, 4)

    def test_simulation_within_bound(self):
        # h >> p log p regime of Theorem 1.
        h, p = 20_000, 16
        mean_imbalance, worst_imbalance = simulate_balls_into_bins(h, p, n_trials=100)
        assert mean_imbalance <= imbalance_bound(h, p)
        assert worst_imbalance <= imbalance_bound(h, p) * 1.5

    def test_simulation_zero_balls(self):
        assert simulate_balls_into_bins(0, 4) == (0.0, 0.0)


class TestScaling:
    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)
        assert parallel_efficiency(480, 4147, 15360, 185) == pytest.approx(0.7, abs=0.01)

    def test_ideal_times(self):
        assert ideal_times(4, 100.0, [4, 8, 16]) == [100.0, 50.0, 25.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            parallel_efficiency(0, 1, 2, 1)
        with pytest.raises(ValueError):
            ideal_times(4, 0, [4])

    def test_scaling_series(self):
        series = ScalingSeries("merAligner-human")
        series.add(480, 4147)
        series.add(960, 2177)
        series.add(15360, 185)
        assert len(series) == 3
        assert series.base_cores == 480
        assert series.efficiency_at(0) == pytest.approx(1.0)
        assert series.efficiency_at(2) == pytest.approx(0.7, abs=0.01)
        rows = series.rows()
        assert rows[2]["speedup"] == pytest.approx(4147 / 185, rel=1e-6)
        assert rows[1]["ideal_seconds"] == pytest.approx(4147 / 2)

    def test_scaling_series_validation(self):
        series = ScalingSeries("x")
        with pytest.raises(ValueError):
            series.add(0, 1.0)
        with pytest.raises(ValueError):
            _ = series.base_cores

    def test_paper_headline_numbers(self):
        """Fig 1 headline: 480 -> 15,360 cores gives a 22x speedup (0.7 eff)."""
        assert speedup(4147, 185) == pytest.approx(22.4, abs=0.1)
