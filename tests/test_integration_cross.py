"""Cross-system integration tests: merAligner vs baselines, SAM output,
threaded execution of the pipeline's building blocks, and report roll-ups."""

import pytest

from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.io.sam import write_sam


@pytest.fixture(scope="module")
def shared_dataset():
    spec = GenomeSpec(name="cross", genome_length=8000, n_contigs=3,
                      repeat_fraction=0.0, min_contig_length=300)
    return make_dataset(spec, ReadSetSpec(coverage=1.5, read_length=60,
                                          error_rate=0.0,
                                          reverse_strand_fraction=0.3), seed=31)


@pytest.fixture(scope="module")
def mer_report(shared_dataset):
    genome, reads = shared_dataset
    config = AlignerConfig(seed_length=21, fragment_length=600)
    return MerAligner(config).run(genome.contigs, reads, n_ranks=4)


@pytest.fixture(scope="module")
def pmap_report(shared_dataset):
    genome, reads = shared_dataset
    pmap = PMapFramework(lambda: BwaLikeAligner(seed_length=21), n_instances=4)
    return pmap.run(genome.contigs, reads)


class TestAlignerVsBaseline:
    def test_aligned_fractions_comparable(self, mer_report, pmap_report):
        """Both aligners should align nearly all error-free synthetic reads,
        with merAligner at least matching the baseline (paper: 86.3% vs 83.8%)."""
        assert mer_report.counters.aligned_fraction > 0.85
        assert pmap_report.aligned_fraction > 0.80
        assert (mer_report.counters.aligned_fraction
                >= pmap_report.aligned_fraction - 0.05)

    def test_agreement_on_read_placement(self, shared_dataset, mer_report, pmap_report):
        """Reads aligned by both tools must agree on the target contig."""
        mer_by_name = {}
        for alignment in mer_report.alignments:
            mer_by_name.setdefault(alignment.query_name, set()).add(alignment.target_id)
        pmap_by_name = {}
        for alignment in pmap_report.alignments:
            pmap_by_name.setdefault(alignment.query_name, set()).add(alignment.target_id)
        common = set(mer_by_name) & set(pmap_by_name)
        assert len(common) > 50
        agreements = sum(1 for name in common
                         if mer_by_name[name] & pmap_by_name[name])
        assert agreements / len(common) > 0.95

    def test_parallel_index_beats_serial_at_scale(self, shared_dataset, mer_report,
                                                  pmap_report):
        """Table II structure: merAligner's index construction is parallel and
        far cheaper than the baseline's serial build at equal concurrency."""
        assert mer_report.index_construction_time < pmap_report.index_construction_time


class TestSamOutput:
    def test_write_pipeline_alignments_as_sam(self, tmp_path, shared_dataset, mer_report):
        genome, _ = shared_dataset
        names = [f"contig{i}" for i in range(len(genome.contigs))]
        lengths = [len(c) for c in genome.contigs]
        path = tmp_path / "out.sam"
        written = write_sam(path, mer_report.alignments, names, lengths)
        assert written == len(mer_report.alignments)
        lines = path.read_text().splitlines()
        header = [line for line in lines if line.startswith("@")]
        body = [line for line in lines if not line.startswith("@")]
        assert len(header) == len(genome.contigs) + 2
        assert len(body) == written
        for line in body[:20]:
            fields = line.split("\t")
            assert fields[2] in names
            assert int(fields[3]) >= 1


class TestReportRollups:
    def test_summary_keys(self, mer_report):
        summary = mer_report.summary()
        for key in ("total_time", "index_construction_time", "alignment_time",
                    "aligned_fraction", "exact_fraction", "sw_calls"):
            assert key in summary

    def test_phase_times_sum_to_total(self, mer_report):
        total = sum(phase.elapsed for phase in mer_report.phases)
        assert mer_report.total_time == pytest.approx(total)
        assert mer_report.io_time + mer_report.index_construction_time + \
            mer_report.alignment_time <= mer_report.total_time + 1e-9

    def test_comm_category_rollups(self, mer_report):
        assert mer_report.seed_lookup_comm_time > 0
        assert mer_report.target_fetch_comm_time >= 0
        assert mer_report.alignment_phase_comm > 0
        assert mer_report.alignment_phase_compute > 0

    def test_counters_consistency(self, mer_report):
        counters = mer_report.counters
        assert counters.reads_aligned <= counters.reads_processed
        assert counters.exact_path_hits <= counters.reads_aligned
        assert counters.seed_lookup_hits <= counters.seed_lookups
        assert counters.alignments_reported == len(mer_report.alignments)
        assert counters.sw_cells >= counters.sw_calls  # every call >= 1 cell

    def test_config_summary_recorded(self, mer_report):
        assert mer_report.config_summary["seed_length"] == 21
        assert mer_report.config_summary["aggregating_stores"] is True

    def test_load_balance_summary_ordering(self, mer_report):
        summary = mer_report.load_balance_summary()
        assert summary["compute_min"] <= summary["compute_avg"] <= summary["compute_max"]
        assert summary["total_min"] <= summary["total_avg"] <= summary["total_max"]
