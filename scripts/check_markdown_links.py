#!/usr/bin/env python3
"""Check that intra-repo Markdown links resolve.

Scans the given Markdown files (default: README.md, docs/*.md,
benchmarks/README.md) for inline links and verifies every relative target
exists on disk, resolving each link against the file that contains it.
External links (http/https/mailto) and pure in-page anchors are skipped;
an anchor suffix on a relative link (``docs/x.md#section``) is stripped
before the existence check.

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link) -- the CI docs job runs this so README and docs/ can never point at
files that moved away.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target).  Reference-style links and
#: autolinks are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_files() -> list[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "benchmarks" / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: Path) -> list[tuple[int, str]]:
    broken: list[tuple[int, str]] = []
    for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main(argv: list[str]) -> int:
    files = [Path(arg) for arg in argv[1:]] or default_files()
    failures = 0
    for path in files:
        if not path.exists():
            print(f"{path}: file not found")
            failures += 1
            continue
        for line_number, target in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT) if path.is_absolute() else path}"
                  f":{line_number}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    checked = ", ".join(str(p.relative_to(REPO_ROOT)
                            if p.is_absolute() else p) for p in files)
    print(f"all intra-repo links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
