#!/usr/bin/env python
"""CI driver for the streaming wire path: bounded-RSS chunked alignment.

Streams a FASTQ file through a running ``meraligner serve`` instance using
the ``ALIGNSTREAM`` family verbs (see ``docs/streaming.md``) and writes the
concatenated response parts to ``--output``.  Two properties are enforced:

* **Bounded memory.**  ``--rss-limit-mb`` arms a hard address-space ceiling
  (``resource.setrlimit``) *before* the stream starts; if the client ever
  tried to materialise the library or the response, the allocation would
  fail and the run would exit nonzero.  The peak RSS actually reached is
  printed at the end for the CI log.
* **Byte identity.**  The written file is byte-identical to the one-shot
  response for the same reads; the CI job checks it with ``cmp`` against an
  offline ``meraligner align`` run.

Exit codes: 0 success, 1 stream/server error, 2 bad input file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def arm_rss_ceiling(limit_mb: int) -> None:
    """Cap this process's address space; exceeding it kills the run."""
    try:
        import resource
    except ImportError:  # non-POSIX: the CI job only runs on Linux
        print("warning: resource module unavailable, RSS ceiling not armed",
              file=sys.stderr)
        return
    limit = limit_mb * 2 ** 20
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    print(f"address-space ceiling armed at {limit_mb} MiB "
          f"(was soft={soft})", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Stream a FASTQ through ALIGNSTREAM with a hard memory "
                    "ceiling; write the concatenated SAM response.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--reads", type=Path, required=True,
                        help="FASTQ file to stream (.gz transparent)")
    parser.add_argument("--output", type=Path, required=True,
                        help="file receiving the concatenated response parts")
    parser.add_argument("--workload",
                        choices=("align", "paired", "count", "screen"),
                        default="align")
    parser.add_argument("--chunk-reads", type=int, default=64,
                        help="reads per streamed chunk")
    parser.add_argument("--rss-limit-mb", type=int, default=0,
                        help="hard address-space ceiling in MiB, armed "
                             "before streaming (0: no ceiling)")
    parser.add_argument("--min-chunks", type=int, default=0,
                        help="fail unless the stream produced at least this "
                             "many request chunks (proves chunking happened)")
    parser.add_argument("--connect-retries", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    if args.rss_limit_mb:
        arm_rss_ceiling(args.rss_limit_mb)

    # Imports after the ceiling is armed: everything below must fit in it.
    from repro.io.errors import InputFileError
    from repro.obs.rss import max_rss_kib
    from repro.service.client import ServiceError, SocketAlignmentClient

    if not args.reads.exists():
        print(f"stream_client: reads file not found: {args.reads}",
              file=sys.stderr)
        return 2

    client = SocketAlignmentClient(host=args.host, port=args.port,
                                   timeout=args.timeout,
                                   connect_retries=args.connect_retries)
    n_parts = 0
    n_bytes = 0
    try:
        parts = client.stream_parts(args.workload, args.reads,
                                    chunk_reads=args.chunk_reads)
        with open(args.output, "w", encoding="ascii") as handle:
            for part in parts:
                handle.write(part)
                n_parts += 1
                n_bytes += len(part)
    except InputFileError as exc:
        print(f"stream_client: bad input: {exc}", file=sys.stderr)
        return 2
    except (OSError, MemoryError, ServiceError) as exc:
        print(f"stream_client: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    peak_kib = max_rss_kib()
    print(f"streamed {args.reads} -> {args.output}: {n_parts} parts, "
          f"{n_bytes} bytes, peak RSS {peak_kib} KiB", flush=True)
    if args.min_chunks and n_parts < args.min_chunks:
        print(f"stream_client: expected >= {args.min_chunks} response "
              f"parts, got {n_parts} -- chunking did not happen",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
