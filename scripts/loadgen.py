#!/usr/bin/env python
"""Measured-load generator for a running ``meraligner serve`` instance.

Drives the socket line protocol with an open-loop mixed workload (see
:mod:`repro.obs.loadgen`) and prints the resulting :class:`LoadReport` as
JSON: client-observed p50/p95/p99 wall-clock latency and achieved
throughput, plus the server-reported batch occupancy and request counters
scraped from the ``METRICS`` verb after the run.

Typical use (the CI smoke runs exactly this shape)::

    meraligner simulate --output-dir /tmp/ds ...
    meraligner serve --genome /tmp/ds/genome.fasta --port 7679 &
    python scripts/loadgen.py --port 7679 --reads /tmp/ds/reads.fastq \\
        --duration 2 --qps 10 --workloads align,count,screen

Exits nonzero when any request failed, so it doubles as a smoke check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.io.fastq import read_fastq  # noqa: E402
from repro.obs.loadgen import DEFAULT_WORKLOADS, LoadGenerator  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop measured load against an alignment server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7679)
    parser.add_argument("--reads", type=Path, required=True,
                        help="FASTQ pool for align/count/screen requests")
    parser.add_argument("--paired-reads", type=Path, default=None,
                        help="interleaved R1/R2 FASTQ pool for the paired "
                             "workload (omitted: paired is dropped from "
                             "the mix)")
    parser.add_argument("--qps", type=float, default=20.0,
                        help="target request rate (open-loop schedule)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="worker threads issuing requests")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="cap on simultaneously in-flight requests, "
                             "tighter than --concurrency; slot waits count "
                             "against latency (default: no cap).  The "
                             "observed peak lands in the report either way")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--n-requests", type=int,
                       help="total requests to issue")
    group.add_argument("--duration", type=float, dest="duration_s",
                       metavar="SECONDS",
                       help="offered-load duration (requests = "
                            "ceil(duration * qps))")
    parser.add_argument("--reads-per-request", type=int, default=8)
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated mix, uniform weights "
                             f"(default: {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--seed", type=int, default=0,
                        help="fixes the workload/read draw of every request")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-request socket timeout, seconds")
    parser.add_argument("--tenants", default=None,
                        help="comma-separated tenant names; each request is "
                             "attributed to one, drawn from the same seeded "
                             "RNG (gateway fair-admission accounting)")
    parser.add_argument("--index", default=None,
                        help="route every request to this named resident "
                             "index (gateway-backed servers only)")
    parser.add_argument("--connect-retries", type=int, default=0,
                        help="client connect retries with exponential "
                             "backoff + jitter (rides out server start-up "
                             "races)")
    args = parser.parse_args(argv)

    reads = read_fastq(args.reads)
    paired = (read_fastq(args.paired_reads)
              if args.paired_reads is not None else None)
    workloads = tuple(w.strip() for w in args.workloads.split(",") if w.strip())

    tenants = (tuple(t.strip() for t in args.tenants.split(",") if t.strip())
               if args.tenants else None)

    generator = LoadGenerator(
        args.host, args.port, reads, paired_reads=paired, qps=args.qps,
        concurrency=args.concurrency, max_inflight=args.max_inflight,
        n_requests=args.n_requests,
        duration_s=args.duration_s, reads_per_request=args.reads_per_request,
        workloads=workloads, seed=args.seed, timeout=args.timeout,
        tenants=tenants, route_index=args.index,
        connect_retries=args.connect_retries)
    report = generator.run()
    print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    if report.n_busy:
        # Explicit admission rejections are the gateway working as designed
        # under overload -- reported, but not a failure of the run.
        print(f"{report.n_busy} requests rejected BUSY", file=sys.stderr)
    if report.n_errors:
        for outcome in report.outcomes:
            if not outcome.ok and not outcome.busy:
                print(f"request {outcome.index} ({outcome.workload}): "
                      f"{outcome.error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
